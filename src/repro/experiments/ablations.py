"""Ablation and extension experiments beyond the paper's figures.

These experiments exercise the design choices DESIGN.md calls out and the
extensions the paper defers to future work:

* **chaff-budget sweep** — IM tracking accuracy versus the number of
  chaffs, compared against the closed form of Eq. (11) (the limit
  ``sum pi^2`` shows why more IM chaffs eventually stop helping);
* **cost-privacy trade-off** — tracking accuracy versus total MEC cost as
  the number of chaffs grows, using the full MEC simulator and its cost
  ledger (Section VIII's deferred study);
* **migration-policy comparison** — cost and user/service co-location of
  the always-follow policy against lazy and MDP-based cost-optimal
  baselines from the related service-migration literature.

All randomness derives from children spawned off the config's master
:class:`~numpy.random.SeedSequence` (no ``seed + offset`` arithmetic, so
streams never overlap across points or across experiments), and the
independent (strategy, model, budget) points are mapped over a process
pool when ``config.workers`` asks for one.
"""

from __future__ import annotations

import numpy as np

from ..analysis.bounds import im_tracking_accuracy, im_tracking_accuracy_limit
from ..core.eavesdropper.detector import MaximumLikelihoodDetector
from ..core.eavesdropper.online import BayesianPosteriorTracker, PrefixMLTracker
from ..core.game import PrivacyGame
from ..core.strategies.base import get_strategy
from ..core.strategies.rollout import RolloutOnlineStrategy
from ..mec.costs import CostModel
from ..mec.policies import (
    AlwaysFollowPolicy,
    DistanceThresholdPolicy,
    MDPMigrationPolicy,
    NeverMigratePolicy,
)
from ..mec.simulator import MECSimulation, MECSimulationConfig
from ..mec.topology import MECTopology
from ..mobility.models import paper_synthetic_models
from ..sim.config import SyntheticExperimentConfig
from ..sim.monte_carlo import MonteCarloRunner
from ..sim.parallel import parallel_map
from ..sim.results import ExperimentResult, SeriesResult
from ..sim.seeding import spawn_generators, spawn_sequences

__all__ = [
    "run_chaff_budget_sweep",
    "run_cost_privacy_tradeoff",
    "run_migration_policy_comparison",
    "run_rollout_vs_myopic",
    "run_online_eavesdropper_comparison",
]


def _monte_carlo_point(task):
    """One (chain, strategy, N) Monte-Carlo point; module-level for pools."""
    chain, strategy, n_services, n_runs, horizon, child, engine = task
    game = PrivacyGame(
        chain, strategy, MaximumLikelihoodDetector(), n_services=n_services
    )
    runner = MonteCarloRunner(n_runs=n_runs, seed=child, engine=engine)
    stats = runner.run(game, horizon=horizon)
    return stats


def run_chaff_budget_sweep(
    config: SyntheticExperimentConfig | None = None,
    *,
    budgets: tuple[int, ...] = (2, 3, 4, 5, 6, 8, 10),
) -> ExperimentResult:
    """IM tracking accuracy versus ``N``, simulated and closed form (Eq. 11)."""
    config = config or SyntheticExperimentConfig()
    models = paper_synthetic_models(
        config.n_cells, seed=config.seed, backend=config.backend
    )
    strategy = get_strategy("IM")
    labels = list(config.mobility_models)
    children = spawn_sequences(
        config.seed, len(labels) * len(budgets), key="ablation-chaff-budget"
    )
    tasks = []
    for model_index, label in enumerate(labels):
        chain = models[label]
        for budget_index, n_services in enumerate(budgets):
            child = children[model_index * len(budgets) + budget_index]
            tasks.append(
                (
                    chain,
                    strategy,
                    n_services,
                    config.n_runs,
                    config.horizon,
                    child,
                    config.engine,
                )
            )
    all_stats = parallel_map(_monte_carlo_point, tasks, workers=config.workers)
    groups: dict[str, list[SeriesResult]] = {}
    scalars: dict[str, float] = {}
    for model_index, label in enumerate(labels):
        chain = models[label]
        point_stats = all_stats[
            model_index * len(budgets) : (model_index + 1) * len(budgets)
        ]
        simulated = [stats.tracking_accuracy for stats in point_stats]
        analytic = [
            im_tracking_accuracy(chain, n_services) for n_services in budgets
        ]
        groups[label] = [
            SeriesResult.from_array("simulated", simulated, index=list(budgets)),
            SeriesResult.from_array("eq11", analytic, index=list(budgets)),
        ]
        scalars[f"{label}/limit"] = im_tracking_accuracy_limit(chain)
    return ExperimentResult(
        experiment_id="ablation-chaff-budget",
        description="IM tracking accuracy vs number of chaffs, simulated vs Eq. (11)",
        groups=groups,
        scalars=scalars,
        config=config.to_dict(),
    )


def _cost_privacy_point(task) -> tuple[float, float]:
    """Mean (tracking accuracy, total cost) for one chaff budget."""
    simulation, chain, n_runs, child = task
    detector = MaximumLikelihoodDetector()
    accuracies = []
    costs = []
    for rng in spawn_generators(child, n_runs):
        report = simulation.run(rng)
        outcome = report.evaluate(chain, detector, rng)
        accuracies.append(outcome["tracking_accuracy"])
        costs.append(outcome["total_cost"])
    return float(np.mean(accuracies)), float(np.mean(costs))


def run_cost_privacy_tradeoff(
    config: SyntheticExperimentConfig | None = None,
    *,
    chaff_counts: tuple[int, ...] = (0, 1, 2, 4),
    strategy_name: str = "IM",
    n_runs: int = 20,
) -> ExperimentResult:
    """Tracking accuracy versus total MEC cost as chaffs are added."""
    config = config or SyntheticExperimentConfig()
    models = paper_synthetic_models(
        config.n_cells, seed=config.seed, backend=config.backend
    )
    label = config.mobility_models[0]
    chain = models[label]
    topology = MECTopology.ring(config.n_cells)
    children = spawn_sequences(
        config.seed, len(chaff_counts), key="ablation-cost-privacy"
    )
    tasks = []
    for child, n_chaffs in zip(children, chaff_counts, strict=True):
        strategy = get_strategy(strategy_name) if n_chaffs > 0 else None
        simulation = MECSimulation(
            topology,
            chain,
            strategy=strategy,
            config=MECSimulationConfig(horizon=config.horizon, n_chaffs=n_chaffs),
        )
        tasks.append((simulation, chain, n_runs, child))
    points = parallel_map(_cost_privacy_point, tasks, workers=config.workers)
    accuracy_series = [accuracy for accuracy, _ in points]
    cost_series = [cost for _, cost in points]
    groups = {
        label: [
            SeriesResult.from_array(
                "tracking-accuracy", accuracy_series, index=list(chaff_counts)
            ),
            SeriesResult.from_array("total-cost", cost_series, index=list(chaff_counts)),
        ]
    }
    scalars = {
        "privacy_gain_per_cost": float(
            (accuracy_series[0] - accuracy_series[-1])
            / max(cost_series[-1] - cost_series[0], 1e-9)
        )
    }
    return ExperimentResult(
        experiment_id="ablation-cost-privacy",
        description="Tracking accuracy vs total MEC cost as the chaff budget grows",
        groups=groups,
        scalars=scalars,
        config=config.to_dict(),
    )


def _migration_policy_point(task) -> tuple[float, float]:
    """Mean (total cost, co-location fraction) of one migration policy."""
    simulation, children = task
    costs = []
    colocations = []
    # Every policy replays the same per-run children (paired comparison);
    # ``default_rng`` derives a fresh generator without consuming the child.
    for child in children:
        rng = np.random.default_rng(child)
        report = simulation.run(rng)
        costs.append(report.total_cost)
        service_cells = np.asarray(report.real_service.location_history)
        colocations.append(float(np.mean(service_cells == report.user_trajectory)))
    return float(np.mean(costs)), float(np.mean(colocations))


def run_migration_policy_comparison(
    config: SyntheticExperimentConfig | None = None, *, n_runs: int = 20
) -> ExperimentResult:
    """Compare migration policies on cost and user/service co-location."""
    config = config or SyntheticExperimentConfig()
    models = paper_synthetic_models(
        config.n_cells, seed=config.seed, backend=config.backend
    )
    label = config.mobility_models[0]
    chain = models[label]
    topology = MECTopology.ring(config.n_cells)
    cost_model = CostModel()
    policies = {
        "always-follow": AlwaysFollowPolicy(),
        "never-migrate": NeverMigratePolicy(),
        "threshold-1": DistanceThresholdPolicy(threshold=1),
        "mdp": MDPMigrationPolicy(topology, chain, cost_model),
    }
    policy_names = list(policies)
    run_children = spawn_sequences(
        config.seed, n_runs, key="ablation-migration-policies"
    )
    tasks = []
    for policy_name in policy_names:
        simulation = MECSimulation(
            topology,
            chain,
            strategy=None,
            policy=policies[policy_name],
            cost_model=cost_model,
            config=MECSimulationConfig(horizon=config.horizon, n_chaffs=0),
        )
        tasks.append((simulation, run_children))
    points = parallel_map(_migration_policy_point, tasks, workers=config.workers)
    cost_values = [cost for cost, _ in points]
    colocation_values = [colocation for _, colocation in points]
    groups = {
        label: [
            SeriesResult.from_array(
                "total-cost", cost_values, policy_names=policy_names
            ),
            SeriesResult.from_array(
                "co-location-fraction", colocation_values, policy_names=policy_names
            ),
        ]
    }
    scalars = {
        f"{name}/cost": cost for name, cost in zip(policy_names, cost_values, strict=True)
    }
    scalars.update(
        {
            f"{name}/colocation": value
            for name, value in zip(policy_names, colocation_values, strict=True)
        }
    )
    return ExperimentResult(
        experiment_id="ablation-migration-policies",
        description="Cost and co-location of always-follow vs lazy/MDP migration policies",
        groups=groups,
        scalars=scalars,
        config=config.to_dict(),
    )


def run_rollout_vs_myopic(
    config: SyntheticExperimentConfig | None = None,
    *,
    n_runs: int = 50,
    lookahead: int = 5,
    n_rollouts: int = 4,
) -> ExperimentResult:
    """Future-work comparison: rollout MDP solver vs the myopic MO policy.

    The paper's Section IV-D notes that the myopic policy is only one
    possible solver for the online chaff-control MDP; this experiment runs
    the rollout solver side by side with MO (and OO as the offline optimum)
    against the basic ML eavesdropper.
    """
    config = config or SyntheticExperimentConfig()
    models = paper_synthetic_models(
        config.n_cells, seed=config.seed, backend=config.backend
    )
    strategies = {
        "MO": get_strategy("MO"),
        "ROLLOUT": RolloutOnlineStrategy(
            lookahead=lookahead, n_rollouts=n_rollouts
        ),
        "OO": get_strategy("OO"),
    }
    runs = min(config.n_runs, n_runs)
    labels = list(config.mobility_models)
    strategy_items = list(strategies.items())
    children = spawn_sequences(
        config.seed, len(labels) * len(strategy_items), key="ablation-rollout"
    )
    tasks = []
    for model_index, label in enumerate(labels):
        chain = models[label]
        for strategy_index, (_, strategy) in enumerate(strategy_items):
            child = children[model_index * len(strategy_items) + strategy_index]
            tasks.append(
                (chain, strategy, 2, runs, config.horizon, child, config.engine)
            )
    all_stats = parallel_map(_monte_carlo_point, tasks, workers=config.workers)
    groups: dict[str, list[SeriesResult]] = {}
    scalars: dict[str, float] = {}
    for model_index, label in enumerate(labels):
        series_list = []
        for strategy_index, (name, _) in enumerate(strategy_items):
            stats = all_stats[model_index * len(strategy_items) + strategy_index]
            series_list.append(
                SeriesResult.from_array(
                    name,
                    stats.per_slot_accuracy,
                    index=list(range(1, stats.horizon + 1)),
                    tracking_accuracy=stats.tracking_accuracy,
                )
            )
            scalars[f"{label}/{name}"] = stats.tracking_accuracy
        groups[label] = series_list
    return ExperimentResult(
        experiment_id="ablation-rollout",
        description="Rollout MDP solver vs myopic online (MO) vs offline optimum (OO)",
        groups=groups,
        scalars=scalars,
        config=config.to_dict(),
    )


def _online_eavesdropper_point(task) -> dict[str, float]:
    """Offline-ML vs online-tracker scores for one mobility model."""
    chain, strategy, horizon, runs, child = task
    offline_detector = MaximumLikelihoodDetector()
    trackers = {"prefix-ml": PrefixMLTracker(), "bayesian": BayesianPosteriorTracker()}
    offline_scores = []
    tracker_scores: dict[str, list[float]] = {name: [] for name in trackers}
    for rng in spawn_generators(child, runs):
        user = chain.sample_trajectory(horizon, rng)
        chaffs = strategy.generate(chain, user, 1, rng)
        observed = np.concatenate([user[None, :], chaffs], axis=0)
        outcome = offline_detector.detect(chain, observed, rng)
        offline_scores.append(
            float(np.mean(observed[outcome.chosen_index] == user))
        )
        for name, tracker in trackers.items():
            result = tracker.track(chain, observed, user, rng)
            tracker_scores[name].append(result.tracking_accuracy)
    return {
        "offline-ml": float(np.mean(offline_scores)),
        **{name: float(np.mean(scores)) for name, scores in tracker_scores.items()},
    }


def run_online_eavesdropper_comparison(
    config: SyntheticExperimentConfig | None = None,
    *,
    strategy_name: str = "MO",
    n_runs: int = 50,
) -> ExperimentResult:
    """Extension: how much stronger is an online (per-slot) eavesdropper?

    Compares the paper's offline ML detector with the prefix-ML and
    Bayesian-posterior online trackers, all against the same chaff strategy.
    """
    config = config or SyntheticExperimentConfig()
    models = paper_synthetic_models(
        config.n_cells, seed=config.seed, backend=config.backend
    )
    strategy = get_strategy(strategy_name)
    runs = min(config.n_runs, n_runs)
    labels = list(config.mobility_models)
    children = spawn_sequences(
        config.seed, len(labels), key="ablation-online-eavesdropper"
    )
    tasks = [
        (models[label], strategy, config.horizon, runs, child)
        for label, child in zip(labels, children, strict=True)
    ]
    points = parallel_map(_online_eavesdropper_point, tasks, workers=config.workers)
    groups: dict[str, list[SeriesResult]] = {}
    scalars: dict[str, float] = {}
    for label, values in zip(labels, points, strict=True):
        groups[label] = [
            SeriesResult.from_array(name, [value]) for name, value in values.items()
        ]
        for name, value in values.items():
            scalars[f"{label}/{name}"] = value
    return ExperimentResult(
        experiment_id="ablation-online-eavesdropper",
        description="Offline ML detector vs per-slot online trackers (extension)",
        groups=groups,
        scalars=scalars,
        config=config.to_dict(),
    )
