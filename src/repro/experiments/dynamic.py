"""The dynamic-world fleet experiment: privacy and cost on a live MEC.

Every other experiment freezes the world for the whole episode.  This one
runs the multi-user fleet against a :class:`~repro.world.timeline.Timeline`
— periodic mobility-regime switches, Poisson site failures with geometric
downtimes, and user churn — and reports how non-stationarity moves the
privacy/cost operating point:

* **failure sweep** — detection/tracking accuracy, per-user cost and
  forced evictions versus the site failure rate (churn held at the
  config's rate);
* **churn sweep** — the same metrics versus the fraction of transient
  users (failures held at the config's rate).

Each sweep point compiles one timeline from its own spawned child of the
config seed (mixed with the experiment id), so the whole result is a pure
function of the config and caches like every other experiment; the fleet
Monte-Carlo inside a point shards bit-identically over workers.
"""

from __future__ import annotations

from ..core.eavesdropper.detector import MaximumLikelihoodDetector
from ..core.strategies.base import get_strategy
from ..mec.fleet import FleetSimulation, FleetSimulationConfig, run_fleet_monte_carlo
from ..mec.topology import MECTopology
from ..mobility.grid import GridTopology
from ..mobility.models import paper_synthetic_models
from ..sim.config import DynamicExperimentConfig
from ..sim.parallel import parallel_map
from ..sim.results import ExperimentResult, SeriesResult
from ..sim.seeding import spawn_sequences
from ..world.generators import dynamic_timeline
from .fleet import grid_dimensions

__all__ = ["run_dynamic_experiment"]


def _dynamic_point(task) -> dict[str, float]:
    """One (failure rate, churn rate) fleet point; module-level for pools."""
    config, failure_rate, churn_rate, child, workers = task
    chains = paper_synthetic_models(config.n_cells, seed=config.seed)
    chain = chains[config.mobility_model]
    regime_chains = ()
    if config.regime_model is not None and config.regime_period is not None:
        regime_chains = (chains[config.regime_model],)
    rows, cols = grid_dimensions(config.n_cells)
    topology = MECTopology.from_grid(
        GridTopology(rows, cols), capacity=config.site_capacity
    )
    timeline = dynamic_timeline(
        horizon=config.horizon,
        n_cells=config.n_cells,
        n_users=config.n_users,
        seed=child,
        regime_chains=regime_chains,
        regime_period=config.regime_period,
        failure_rate=failure_rate,
        churn_rate=churn_rate,
        mean_downtime=config.mean_downtime,
    )
    simulation = FleetSimulation(
        topology,
        chain,
        strategy=get_strategy(config.strategy) if config.n_chaffs > 0 else None,
        config=FleetSimulationConfig(
            n_users=config.n_users,
            horizon=config.horizon,
            n_chaffs=config.n_chaffs,
        ),
        timeline=timeline,
    )
    statistics = run_fleet_monte_carlo(
        simulation,
        n_runs=config.n_runs,
        seed=child,
        detector=MaximumLikelihoodDetector(),
        workers=workers,
        engine=config.engine,
    )
    return {
        "detection": statistics.mean_detection,
        "tracking": statistics.mean_tracking,
        "per_user_cost": statistics.mean_cost_per_user,
        "migrations": statistics.mean_migrations,
        "rejected": statistics.mean_rejected,
        "evicted": statistics.mean_evicted,
        "stranded": statistics.mean_stranded,
    }


def _sweep_series(
    points: list[dict[str, float]], index: list[float]
) -> list[SeriesResult]:
    """The reported series of one sweep."""
    return [
        SeriesResult.from_array(
            "detection-accuracy", [p["detection"] for p in points], index=index
        ),
        SeriesResult.from_array(
            "tracking-accuracy", [p["tracking"] for p in points], index=index
        ),
        SeriesResult.from_array(
            "per-user-cost", [p["per_user_cost"] for p in points], index=index
        ),
        SeriesResult.from_array(
            "forced-evictions", [p["evicted"] for p in points], index=index
        ),
        SeriesResult.from_array(
            "rejected-migrations", [p["rejected"] for p in points], index=index
        ),
    ]


def run_dynamic_experiment(
    config: DynamicExperimentConfig | None = None,
) -> ExperimentResult:
    """Privacy and per-user cost vs site failure rate and user churn rate."""
    config = config or DynamicExperimentConfig()
    failure_rates = list(config.failure_rates())
    churn_rates = list(config.churn_rates())
    children = spawn_sequences(
        config.seed, len(failure_rates) + len(churn_rates), key="dynamic"
    )
    n_points = len(failure_rates) + len(churn_rates)
    point_workers = config.workers if n_points == 1 else 1
    tasks = []
    for index, failure_rate in enumerate(failure_rates):
        tasks.append(
            (config, failure_rate, config.churn_rate, children[index], point_workers)
        )
    for index, churn_rate in enumerate(churn_rates):
        tasks.append(
            (
                config,
                config.failure_rate,
                churn_rate,
                children[len(failure_rates) + index],
                point_workers,
            )
        )
    points = parallel_map(
        _dynamic_point, tasks, workers=1 if n_points == 1 else config.workers
    )
    failure_points = points[: len(failure_rates)]
    churn_points = points[len(failure_rates) :]
    groups = {
        f"failure-rate (churn = {config.churn_rate})": _sweep_series(
            failure_points, failure_rates
        ),
        f"churn-rate (failures = {config.failure_rate})": _sweep_series(
            churn_points, churn_rates
        ),
    }
    # Sweeps may be listed in any order: "max"/"min" scalars go by the
    # rates themselves, not the listing position.
    hottest = failure_points[failure_rates.index(max(failure_rates))]
    calmest = failure_points[failure_rates.index(min(failure_rates))]
    churniest = churn_points[churn_rates.index(max(churn_rates))]
    scalars = {
        "detection_at_max_failure_rate": hottest["detection"],
        "evictions_at_max_failure_rate": hottest["evicted"],
        "failure_privacy_shift": hottest["detection"] - calmest["detection"],
        "detection_at_max_churn": churniest["detection"],
        "cost_at_max_churn": churniest["per_user_cost"],
    }
    return ExperimentResult(
        experiment_id="dynamic",
        description=(
            "Dynamic-world fleet: per-user detection/tracking accuracy, "
            "cost and forced evictions vs site failure rate and user churn "
            "rate on a live MEC (regime switches included)"
        ),
        groups=groups,
        scalars=scalars,
        config=config.to_dict(),
    )
