"""Fig. 9: basic eavesdropper on the taxi traces, before and after chaffs.

Part (a): per-user tracking accuracy when no chaff is used, compared with
the ``1/N`` random-guess baseline — a small set of highly predictable
users is tracked far above the baseline.

Part (b): for the top-K most-tracked users, tracking accuracy after adding
a single chaff controlled by each strategy (no chaff, IM, MO, ML, OO).
"""

from __future__ import annotations

import numpy as np

from ..core.eavesdropper.detector import MaximumLikelihoodDetector
from ..core.strategies.base import get_strategy
from ..sim.config import TraceExperimentConfig
from ..sim.parallel import parallel_map
from ..sim.results import ExperimentResult, SeriesResult
from ..sim.seeding import spawn_sequences
from .trace_common import (
    build_taxi_dataset,
    per_user_tracking_accuracy,
    protected_user_accuracy,
    top_k_tracked_users,
)

__all__ = ["run_fig9"]


def _protected_user_point(task) -> list[float]:
    """All panel-(b) bars for one protected user; module-level for pools."""
    dataset, user_row, bar_labels, n_chaffs, child = task
    detector = MaximumLikelihoodDetector()
    values = []
    for label in bar_labels:
        strategy = None if label == "no chaff" else get_strategy(label)
        values.append(
            protected_user_accuracy(
                dataset,
                user_row,
                strategy,
                detector,
                n_chaffs=n_chaffs,
                seed=child,
            )
        )
    return values


def run_fig9(config: TraceExperimentConfig | None = None) -> ExperimentResult:
    """Run both panels of Fig. 9 on the synthetic taxi dataset."""
    config = config or TraceExperimentConfig()
    dataset = build_taxi_dataset(config)
    # Panel (a): per-user accuracy without chaffs, sorted descending.
    accuracies = per_user_tracking_accuracy(dataset, seed=config.seed)
    order = np.argsort(-accuracies, kind="stable")
    sorted_accuracies = accuracies[order]
    baseline = 1.0 / dataset.n_nodes
    panel_a = [
        SeriesResult.from_array(
            "per-user accuracy (sorted)",
            sorted_accuracies,
            index=list(range(1, dataset.n_nodes + 1)),
        ),
        SeriesResult.from_array(
            "1/N baseline",
            np.full(dataset.n_nodes, baseline),
            index=list(range(1, dataset.n_nodes + 1)),
        ),
    ]

    # Panel (b): top-K users protected by a single chaff under each strategy.
    top_users = top_k_tracked_users(dataset, config.top_k_users, seed=config.seed)
    panel_b: list[SeriesResult] = []
    scalars: dict[str, float] = {
        "baseline_1_over_N": baseline,
        "max_unprotected_accuracy": float(sorted_accuracies[0]),
        "n_users_above_10x_baseline": float(
            np.sum(sorted_accuracies > 10.0 * baseline)
        ),
    }
    bar_labels = ["no chaff", *config.strategies]
    user_children = spawn_sequences(config.seed, len(top_users), key="fig9")
    user_points = parallel_map(
        _protected_user_point,
        [
            (dataset, user_row, bar_labels, config.n_chaffs, child)
            for user_row, child in zip(top_users, user_children, strict=True)
        ],
        workers=config.workers,
    )
    for rank, (user_row, values) in enumerate(zip(top_users, user_points, strict=True), start=1):
        for label, accuracy in zip(bar_labels, values, strict=True):
            scalars[f"user{rank}/{label}"] = accuracy
        panel_b.append(
            SeriesResult.from_array(
                f"user{rank}",
                values,
                index=list(range(len(bar_labels))),
                bar_labels=bar_labels,
                dataset_row=user_row,
            )
        )

    return ExperimentResult(
        experiment_id="fig9",
        description=(
            "Basic eavesdropper on taxi traces: per-user accuracy without chaffs "
            "and top-K users with a single chaff"
        ),
        groups={"no-chaff": panel_a, "single-chaff": panel_b},
        scalars=scalars,
        config=config.to_dict(),
    )
