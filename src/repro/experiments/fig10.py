"""Fig. 10: advanced eavesdropper on the taxi traces with two chaffs.

For the top-K most-tracked users, the advanced (strategy-aware)
eavesdropper is evaluated against the original strategies (IM, ML, OO,
MO) and the robust strategies (RMO, RML, ROO), each controlling two
chaffs.  The deterministic strategies are ineffective against this
eavesdropper while RML and ROO substantially reduce the tracking accuracy.
"""

from __future__ import annotations

from ..core.eavesdropper.advanced import StrategyAwareDetector
from ..core.strategies.base import get_strategy
from ..sim.config import TraceExperimentConfig
from ..sim.results import ExperimentResult, SeriesResult
from .trace_common import (
    build_taxi_dataset,
    protected_user_accuracy,
    top_k_tracked_users,
)

__all__ = ["run_fig10", "FIG10_STRATEGIES"]

#: (bar label, employed strategy, strategy assumed by the eavesdropper).
FIG10_STRATEGIES: tuple[tuple[str, str, str], ...] = (
    ("IM", "IM", "IM"),
    ("ML", "ML", "ML"),
    ("OO", "OO", "OO"),
    ("MO", "MO", "MO"),
    ("RMO", "RMO", "MO"),
    ("RML", "RML", "ML"),
    ("ROO", "ROO", "OO"),
)


def run_fig10(
    config: TraceExperimentConfig | None = None, *, n_chaffs: int = 2
) -> ExperimentResult:
    """Run the advanced-eavesdropper trace experiment of Fig. 10."""
    config = config or TraceExperimentConfig()
    if n_chaffs < 1:
        raise ValueError("n_chaffs must be positive")
    dataset = build_taxi_dataset(config)
    top_users = top_k_tracked_users(dataset, config.top_k_users, seed=config.seed)

    groups: dict[str, list[SeriesResult]] = {"two-chaffs": []}
    scalars: dict[str, float] = {}
    bar_labels = [label for label, _, _ in FIG10_STRATEGIES]
    # One detector per assumed strategy, shared across users so its
    # deterministic-map cache over the (fixed) fleet trajectories is reused.
    detectors = {
        assumed: StrategyAwareDetector(get_strategy(assumed))
        for _, _, assumed in FIG10_STRATEGIES
    }
    for rank, user_row in enumerate(top_users, start=1):
        values = []
        for label, employed, assumed in FIG10_STRATEGIES:
            detector = detectors[assumed]
            strategy = get_strategy(employed)
            accuracy = protected_user_accuracy(
                dataset,
                user_row,
                strategy,
                detector,
                n_chaffs=n_chaffs,
                seed=config.seed + 100 * rank,
            )
            values.append(accuracy)
            scalars[f"user{rank}/{label}"] = accuracy
        groups["two-chaffs"].append(
            SeriesResult.from_array(
                f"user{rank}",
                values,
                index=list(range(len(bar_labels))),
                bar_labels=bar_labels,
                dataset_row=user_row,
            )
        )
    return ExperimentResult(
        experiment_id="fig10",
        description=(
            "Advanced eavesdropper on taxi traces with two chaffs per protected user"
        ),
        groups=groups,
        scalars=scalars,
        config=config.to_dict(),
    )
