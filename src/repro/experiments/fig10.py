"""Fig. 10: advanced eavesdropper on the taxi traces with two chaffs.

For the top-K most-tracked users, the advanced (strategy-aware)
eavesdropper is evaluated against the original strategies (IM, ML, OO,
MO) and the robust strategies (RMO, RML, ROO), each controlling two
chaffs.  The deterministic strategies are ineffective against this
eavesdropper while RML and ROO substantially reduce the tracking accuracy.
"""

from __future__ import annotations

from ..core.eavesdropper.advanced import StrategyAwareDetector
from ..core.strategies.base import get_strategy
from ..sim.config import TraceExperimentConfig
from ..sim.parallel import parallel_map
from ..sim.results import ExperimentResult, SeriesResult
from ..sim.seeding import spawn_sequences
from .trace_common import (
    build_taxi_dataset,
    protected_user_accuracy,
    top_k_tracked_users,
)

__all__ = ["run_fig10", "FIG10_STRATEGIES"]


def _advanced_user_point(task) -> list[float]:
    """All Fig. 10 bars for one protected user; module-level for pools.

    The detectors dict is shared between tasks: run serially (in-process)
    their deterministic-map caches accumulate across users, while a
    process pool ships each worker its own copy.
    """
    dataset, user_row, detectors, n_chaffs, child = task
    values = []
    for _, employed, assumed in FIG10_STRATEGIES:
        values.append(
            protected_user_accuracy(
                dataset,
                user_row,
                get_strategy(employed),
                detectors[assumed],
                n_chaffs=n_chaffs,
                seed=child,
            )
        )
    return values

#: (bar label, employed strategy, strategy assumed by the eavesdropper).
FIG10_STRATEGIES: tuple[tuple[str, str, str], ...] = (
    ("IM", "IM", "IM"),
    ("ML", "ML", "ML"),
    ("OO", "OO", "OO"),
    ("MO", "MO", "MO"),
    ("RMO", "RMO", "MO"),
    ("RML", "RML", "ML"),
    ("ROO", "ROO", "OO"),
)


def run_fig10(
    config: TraceExperimentConfig | None = None, *, n_chaffs: int = 2
) -> ExperimentResult:
    """Run the advanced-eavesdropper trace experiment of Fig. 10."""
    config = config or TraceExperimentConfig()
    if n_chaffs < 1:
        raise ValueError("n_chaffs must be positive")
    dataset = build_taxi_dataset(config)
    top_users = top_k_tracked_users(dataset, config.top_k_users, seed=config.seed)

    groups: dict[str, list[SeriesResult]] = {"two-chaffs": []}
    scalars: dict[str, float] = {}
    bar_labels = [label for label, _, _ in FIG10_STRATEGIES]
    # One detector per assumed strategy, shared across users so its
    # deterministic-map cache over the (fixed) fleet trajectories is reused.
    detectors = {
        assumed: StrategyAwareDetector(get_strategy(assumed))
        for _, _, assumed in FIG10_STRATEGIES
    }
    user_children = spawn_sequences(config.seed, len(top_users), key="fig10")
    user_points = parallel_map(
        _advanced_user_point,
        [
            (dataset, user_row, detectors, n_chaffs, child)
            for user_row, child in zip(top_users, user_children, strict=True)
        ],
        workers=config.workers,
    )
    for rank, (user_row, values) in enumerate(zip(top_users, user_points, strict=True), start=1):
        for label, accuracy in zip(bar_labels, values, strict=True):
            scalars[f"user{rank}/{label}"] = accuracy
        groups["two-chaffs"].append(
            SeriesResult.from_array(
                f"user{rank}",
                values,
                index=list(range(len(bar_labels))),
                bar_labels=bar_labels,
                dataset_row=user_row,
            )
        )
    return ExperimentResult(
        experiment_id="fig10",
        description=(
            "Advanced eavesdropper on taxi traces with two chaffs per protected user"
        ),
        groups=groups,
        scalars=scalars,
        config=config.to_dict(),
    )
