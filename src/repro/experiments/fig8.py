"""Fig. 8: cell layout and empirical steady-state distribution (trace-driven).

Part (a) of the figure shows node and tower positions; part (b) shows the
empirical steady-state distribution over Voronoi cells, which is strongly
spatially skewed.  We reproduce the tower layout (planar coordinates), the
empirical stationary distribution and its skewness measures.
"""

from __future__ import annotations

import numpy as np

from ..analysis.information import entropy, temporal_skewness
from ..sim.config import TraceExperimentConfig
from ..sim.results import ExperimentResult, SeriesResult
from .trace_common import build_taxi_dataset

__all__ = ["run_fig8"]


def run_fig8(config: TraceExperimentConfig | None = None) -> ExperimentResult:
    """Build the taxi dataset and summarise its cell layout and mobility model."""
    config = config or TraceExperimentConfig()
    dataset = build_taxi_dataset(config)
    stationary = dataset.empirical_stationary()
    model_stationary = dataset.mobility_model.stationary
    coordinates = dataset.quantizer.tower_planar_coordinates
    groups = {
        "layout": [
            SeriesResult.from_array(
                "tower-x-meters", coordinates[:, 0], index=list(range(len(coordinates)))
            ),
            SeriesResult.from_array(
                "tower-y-meters", coordinates[:, 1], index=list(range(len(coordinates)))
            ),
        ],
        "steady-state": [
            SeriesResult.from_array(
                "empirical-visits",
                stationary,
                index=list(range(dataset.n_cells)),
            ),
            SeriesResult.from_array(
                "fitted-model",
                model_stationary,
                index=list(range(dataset.n_cells)),
            ),
        ],
    }
    # log of a cell *count* (>= 1), not of probabilities — no floor needed.
    uniform_entropy = float(np.log(dataset.n_cells))  # repro-lint: disable=RPL002
    scalars = {
        "n_cells": float(dataset.n_cells),
        "n_nodes": float(dataset.n_nodes),
        "horizon": float(dataset.horizon),
        "max_cell_probability": float(stationary.max()),
        "stationary_entropy_nats": entropy(model_stationary),
        "uniform_entropy_nats": uniform_entropy,
        "temporal_skewness": temporal_skewness(dataset.mobility_model),
    }
    return ExperimentResult(
        experiment_id="fig8",
        description="Cell layout and empirical steady-state distribution of the taxi traces",
        groups=groups,
        scalars=scalars,
        config=config.to_dict(),
    )
