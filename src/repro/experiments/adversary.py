"""The adversary-ladder experiment: knowledge x coverage vs privacy.

The paper scores privacy against one fixed adversary — an oracle that
knows the true mobility model and watches every site.  This experiment
asks the operational question instead: *how much does an attacker need
to know and see before privacy collapses?*  One fleet Monte-Carlo is
simulated (on a regime-switching world, so regime-blind knowledge is
meaningfully handicapped) and the **same** report sequence is replayed
against a grid of adversaries:

* **coverage sweep** — for every knowledge level, detection/tracking
  versus the fraction of compromised sites (a single seeded view,
  nested across fractions);
* **coalition sweep** — for every knowledge level, detection versus the
  number of colluding partial views (each member compromising its own
  seeded fraction of the sites).

Because the defender's world never depends on the adversary, the
reports are simulated once — sharded over ``config.workers``
bit-identically — and every grid point is a deterministic, serial
replay (learning adversaries accumulate their model episode over
episode in run order).  The whole result is a pure function of the
config: cacheable, engine- and worker-count invariant.
"""

from __future__ import annotations

import numpy as np

from ..adversary import (
    AdversaryDetector,
    FullCoverage,
    ScoreComponentCache,
    SiteCoverage,
    coalition_coverage,
    make_knowledge,
)
from ..adversary.monte_carlo import run_adversary_monte_carlo, simulate_fleet_reports
from ..core.strategies.base import get_strategy
from ..mec.fleet import FleetSimulation, FleetSimulationConfig
from ..mec.topology import MECTopology
from ..mobility.grid import GridTopology
from ..mobility.models import paper_synthetic_models
from ..sim.config import AdversaryExperimentConfig
from ..sim.results import ExperimentResult, SeriesResult
from ..sim.seeding import spawn_sequences
from ..world.generators import dynamic_timeline
from ..world.timeline import Timeline
from .fleet import grid_dimensions

__all__ = ["run_adversary_experiment"]


def _build_simulation(
    config: AdversaryExperimentConfig, world_seed: np.random.SeedSequence
) -> FleetSimulation:
    """The shared fleet simulation every adversary point replays."""
    chains = paper_synthetic_models(config.n_cells, seed=config.seed)
    chain = chains[config.mobility_model]
    rows, cols = grid_dimensions(config.n_cells)
    topology = MECTopology.from_grid(
        GridTopology(rows, cols), capacity=config.site_capacity
    )
    timeline = Timeline()
    if config.regime_model is not None and config.regime_period is not None:
        timeline = dynamic_timeline(
            horizon=config.horizon,
            n_cells=config.n_cells,
            n_users=config.n_users,
            seed=world_seed,
            regime_chains=(chains[config.regime_model],),
            regime_period=config.regime_period,
        )
    return FleetSimulation(
        topology,
        chain,
        strategy=get_strategy(config.strategy) if config.n_chaffs > 0 else None,
        config=FleetSimulationConfig(
            n_users=config.n_users,
            horizon=config.horizon,
            n_chaffs=config.n_chaffs,
        ),
        timeline=timeline,
    )


def _evaluate_point(config, simulation, reports, level, coverage, score_cache):
    """Detection/tracking of one fresh (knowledge, coverage) adversary.

    The adversary itself is fresh per point (knowledge must not leak
    across the grid); the score cache is shared, so the gather tables of
    each plane are built once and reused across every coverage mask and
    every stateless knowledge level — bit-identically.
    """
    adversary = AdversaryDetector(
        make_knowledge(
            level, smoothing=config.smoothing, warm_start=config.warm_start
        ),
        coverage,
        score_cache=score_cache,
    )
    statistics = run_adversary_monte_carlo(
        simulation,
        adversary,
        n_runs=len(reports),
        seed=config.seed,  # unused: reports are precomputed
        reports=reports,
    )
    return {
        "detection": statistics.mean_detection,
        "tracking": statistics.mean_tracking,
    }


def run_adversary_experiment(
    config: AdversaryExperimentConfig | None = None,
) -> ExperimentResult:
    """Detection and tracking across the knowledge/coverage ladder."""
    config = config or AdversaryExperimentConfig()
    world_seed, run_seed, coverage_seed = spawn_sequences(
        config.seed, 3, key="adversary"
    )
    simulation = _build_simulation(config, world_seed)
    reports = simulate_fleet_reports(
        simulation,
        n_runs=config.n_runs,
        seed=run_seed,
        workers=config.workers,
        engine=config.engine,
        run_stack=config.run_stack,
    )
    score_cache = ScoreComponentCache()

    fractions = [float(f) for f in config.coverage_fractions]
    sizes = [int(s) for s in config.coalition_sizes]
    levels = list(config.knowledge_levels)

    def single_view(fraction: float):
        # fraction 1.0 is exact full coverage (no rounding ambiguity).
        if fraction >= 1.0:
            return FullCoverage()
        return SiteCoverage(fraction, coverage_seed)

    coverage_points: dict[str, list[dict[str, float]]] = {}
    coalition_points: dict[str, list[dict[str, float]]] = {}
    for level in levels:
        coverage_points[level] = [
            _evaluate_point(
                config, simulation, reports, level, single_view(f), score_cache
            )
            for f in fractions
        ]
        coalition_points[level] = [
            _evaluate_point(
                config,
                simulation,
                reports,
                level,
                coalition_coverage(s, config.coalition_fraction, coverage_seed),
                score_cache,
            )
            for s in sizes
        ]

    coverage_series = []
    for level in levels:
        points = coverage_points[level]
        coverage_series.append(
            SeriesResult.from_array(
                f"detection [{level}]",
                [p["detection"] for p in points],
                index=fractions,
            )
        )
        coverage_series.append(
            SeriesResult.from_array(
                f"tracking [{level}]",
                [p["tracking"] for p in points],
                index=fractions,
            )
        )
    coalition_series = [
        SeriesResult.from_array(
            f"detection [{level}]",
            [p["detection"] for p in coalition_points[level]],
            index=sizes,
        )
        for level in levels
    ]
    groups = {
        "coverage-fraction (single view)": coverage_series,
        f"coalition-size (fraction = {config.coalition_fraction} per member)": (
            coalition_series
        ),
    }

    costs = np.array([report.per_user_cost.mean() for report in reports])
    widest = fractions.index(max(fractions))
    narrowest = fractions.index(min(fractions))
    scalars: dict[str, float] = {
        "defender_cost_per_user": float(costs.mean()),
        # Deterministic for a given config: same planes, same grid walk.
        "score_cache_hit_ratio": float(score_cache.stats()["hit_ratio"]),
    }
    for level in levels:
        points = coverage_points[level]
        scalars[f"detection_{level}_at_max_coverage"] = points[widest]["detection"]
        scalars[f"coverage_gain_{level}"] = (
            points[widest]["detection"] - points[narrowest]["detection"]
        )
    if "oracle" in levels:
        oracle_best = coverage_points["oracle"][widest]["detection"]
        for level in levels:
            if level != "oracle":
                scalars[f"knowledge_gap_{level}"] = (
                    oracle_best - coverage_points[level][widest]["detection"]
                )
    return ExperimentResult(
        experiment_id="adversary",
        description=(
            "Adversary knowledge/coverage ladder: per-user detection and "
            "tracking vs knowledge level (oracle / learned / stale), "
            "compromised-site fraction and coalition size, on one shared "
            "fleet Monte-Carlo"
        ),
        groups=groups,
        scalars=scalars,
        config=config.to_dict(),
    )
