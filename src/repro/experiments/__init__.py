"""Experiment modules: one per paper figure/table plus ablations."""

from .fig4 import run_fig4
from .fig5 import run_fig5
from .fig6 import run_fig6
from .fig7 import run_fig7
from .fig8 import run_fig8
from .fig9 import run_fig9
from .fig10 import run_fig10
from .ablations import (
    run_chaff_budget_sweep,
    run_cost_privacy_tradeoff,
    run_migration_policy_comparison,
    run_online_eavesdropper_comparison,
    run_rollout_vs_myopic,
)
from .fleet import run_fleet_experiment
from .registry import EXPERIMENTS, available_experiments, run_experiment
from .trace_common import (
    build_taxi_dataset,
    per_user_tracking_accuracy,
    protected_user_accuracy,
    top_k_tracked_users,
)

__all__ = [
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_fig10",
    "run_chaff_budget_sweep",
    "run_cost_privacy_tradeoff",
    "run_migration_policy_comparison",
    "run_online_eavesdropper_comparison",
    "run_rollout_vs_myopic",
    "run_fleet_experiment",
    "EXPERIMENTS",
    "available_experiments",
    "run_experiment",
    "build_taxi_dataset",
    "per_user_tracking_accuracy",
    "protected_user_accuracy",
    "top_k_tracked_users",
]
