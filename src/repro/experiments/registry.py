"""Registry mapping experiment identifiers to their runner functions.

Used by the CLI (``python -m repro.cli run fig5``) and by the benchmark
harness, which iterates over every registered experiment so each table
and figure of the paper has a regeneration target.

``run_experiment`` optionally consults a content-addressed on-disk cache
(:mod:`repro.sim.cache`): the result of a previous run with the same
(experiment id, config, package version) key is returned without any
simulation, and fresh results are stored on the way out.
"""

from __future__ import annotations

import inspect
from pathlib import Path
from typing import Callable

from ..sim.cache import ResultCache, experiment_cache_key
from ..sim.results import ExperimentResult
from ..telemetry import NULL_RECORDER
from .ablations import (
    run_chaff_budget_sweep,
    run_cost_privacy_tradeoff,
    run_migration_policy_comparison,
    run_online_eavesdropper_comparison,
    run_rollout_vs_myopic,
)
from .adversary import run_adversary_experiment
from .dynamic import run_dynamic_experiment
from .fleet import run_fleet_experiment
from .fig4 import run_fig4
from .fig5 import run_fig5
from .fig6 import run_fig6
from .fig7 import run_fig7
from .fig8 import run_fig8
from .fig9 import run_fig9
from .fig10 import run_fig10

__all__ = ["EXPERIMENTS", "run_experiment", "available_experiments"]

#: Experiment id -> zero-argument-friendly runner (all accept an optional config).
EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "fig4": run_fig4,
    "fig5": run_fig5,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "fig10": run_fig10,
    "ablation-chaff-budget": run_chaff_budget_sweep,
    "ablation-cost-privacy": run_cost_privacy_tradeoff,
    "ablation-migration-policies": run_migration_policy_comparison,
    "ablation-rollout": run_rollout_vs_myopic,
    "ablation-online-eavesdropper": run_online_eavesdropper_comparison,
    "fleet": run_fleet_experiment,
    "dynamic": run_dynamic_experiment,
    "adversary": run_adversary_experiment,
}


def available_experiments() -> list[str]:
    """Identifiers of all registered experiments."""
    return sorted(EXPERIMENTS)


def _invocation_cache_key(experiment_id: str, args, kwargs) -> str | None:
    """Cache key for one ``run_experiment`` call, or ``None`` if uncacheable.

    Cacheable calls pass at most one positional argument (the config
    object, whose ``to_dict`` form enters the key) plus JSON-serialisable
    keyword arguments.  Anything else — multiple positionals, a config
    without ``to_dict``, non-JSON kwargs — bypasses the cache rather than
    risking a wrong hit.
    """
    if len(args) > 1:
        return None
    config_dict: dict = {}
    if args and args[0] is not None:
        config = args[0]
        if not hasattr(config, "to_dict"):
            return None
        config_dict = config.to_dict()
    return experiment_cache_key(experiment_id, config_dict, extra=kwargs)


def run_experiment(
    experiment_id: str,
    *args,
    cache: "ResultCache | str | Path | None" = None,
    recorder=None,
    **kwargs,
) -> ExperimentResult:
    """Run a registered experiment by id.

    Parameters
    ----------
    cache:
        Optional result cache — a :class:`~repro.sim.cache.ResultCache`
        or a directory path.  On a key hit the stored result is returned
        without running anything; on a miss the experiment runs and its
        result is stored.  Execution-only config fields (``engine``,
        ``workers``) are excluded from the key, so cached results are
        shared across serial and parallel invocations.
    recorder:
        Optional :class:`~repro.telemetry.Recorder`.  The whole
        invocation runs under an ``experiment/<id>`` span, cache
        behaviour lands on the unified counter schema, and runners that
        accept a ``recorder`` keyword (the fleet experiment, for one)
        record their phase spans into it.  Telemetry is execution-only:
        it never enters the cache key and never changes the numbers.
    """
    if experiment_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {available_experiments()}"
        )
    recorder = NULL_RECORDER if recorder is None else recorder
    if cache is not None and not isinstance(cache, ResultCache):
        cache = ResultCache(cache)
    runner = EXPERIMENTS[experiment_id]
    with recorder.span(f"experiment/{experiment_id}"):
        key = None
        if cache is not None:
            key = _invocation_cache_key(experiment_id, args, kwargs)
            if key is not None:
                cached = cache.get(key)
                if cached is not None:
                    recorder.record_stats("result_cache", cache.stats())
                    return cached
        if (
            recorder.enabled
            and "recorder" in inspect.signature(runner).parameters
        ):
            kwargs = dict(kwargs, recorder=recorder)
        result = runner(*args, **kwargs)
        if cache is not None and key is not None:
            cache.put(key, result)
        if cache is not None:
            recorder.record_stats("result_cache", cache.stats())
    return result
