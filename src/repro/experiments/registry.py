"""Registry mapping experiment identifiers to their runner functions.

Used by the CLI (``python -m repro.cli run fig5``) and by the benchmark
harness, which iterates over every registered experiment so each table
and figure of the paper has a regeneration target.
"""

from __future__ import annotations

from typing import Callable

from ..sim.results import ExperimentResult
from .ablations import (
    run_chaff_budget_sweep,
    run_cost_privacy_tradeoff,
    run_migration_policy_comparison,
    run_online_eavesdropper_comparison,
    run_rollout_vs_myopic,
)
from .fig4 import run_fig4
from .fig5 import run_fig5
from .fig6 import run_fig6
from .fig7 import run_fig7
from .fig8 import run_fig8
from .fig9 import run_fig9
from .fig10 import run_fig10

__all__ = ["EXPERIMENTS", "run_experiment", "available_experiments"]

#: Experiment id -> zero-argument-friendly runner (all accept an optional config).
EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "fig4": run_fig4,
    "fig5": run_fig5,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "fig10": run_fig10,
    "ablation-chaff-budget": run_chaff_budget_sweep,
    "ablation-cost-privacy": run_cost_privacy_tradeoff,
    "ablation-migration-policies": run_migration_policy_comparison,
    "ablation-rollout": run_rollout_vs_myopic,
    "ablation-online-eavesdropper": run_online_eavesdropper_comparison,
}


def available_experiments() -> list[str]:
    """Identifiers of all registered experiments."""
    return sorted(EXPERIMENTS)


def run_experiment(experiment_id: str, *args, **kwargs) -> ExperimentResult:
    """Run a registered experiment by id."""
    if experiment_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {available_experiments()}"
        )
    return EXPERIMENTS[experiment_id](*args, **kwargs)
