"""Fig. 7: tracking accuracy of the advanced (strategy-aware) eavesdropper.

The advanced eavesdropper knows the chaff control strategy; the
deterministic strategies collapse against it, so Fig. 7 compares the IM
strategy with the randomised robust strategies RML, ROO and RMO, all with
``N = 10`` (nine chaffs), for each synthetic mobility model.

The strategy-aware detector is instantiated with the deterministic
counterpart of each employed strategy (ML for RML, OO for ROO, MO for
RMO): that is the best reproducible map the eavesdropper can test
observed trajectories against, and it is exactly the attack the robust
variants are designed to defeat.
"""

from __future__ import annotations

from ..core.eavesdropper.advanced import StrategyAwareDetector
from ..core.strategies.base import get_strategy
from ..mobility.models import paper_synthetic_models
from ..sim.config import SyntheticExperimentConfig
from ..sim.results import ExperimentResult, SeriesResult
from ..sim.runner import sweep_strategies
from ..sim.seeding import spawn_sequences

__all__ = ["run_fig7", "FIG7_STRATEGIES"]

#: (series label, employed strategy, strategy the eavesdropper assumes).
FIG7_STRATEGIES: tuple[tuple[str, str, str], ...] = (
    ("IM", "IM", "IM"),
    ("RML", "RML", "ML"),
    ("ROO", "ROO", "OO"),
    ("RMO", "RMO", "MO"),
)


def run_fig7(
    config: SyntheticExperimentConfig | None = None, *, n_services: int = 10
) -> ExperimentResult:
    """Run the advanced-eavesdropper sweep of Fig. 7."""
    config = config or SyntheticExperimentConfig()
    if n_services < 2:
        raise ValueError("n_services must be at least 2")
    models = paper_synthetic_models(
        config.n_cells, seed=config.seed, backend=config.backend
    )
    groups: dict[str, list[SeriesResult]] = {}
    scalars: dict[str, float] = {}
    n_models = len(config.mobility_models)
    children = spawn_sequences(
        config.seed, n_models * len(FIG7_STRATEGIES), key="fig7"
    )
    for model_index, label in enumerate(config.mobility_models):
        chain = models[label]
        series_list = []
        for strategy_index, (series_label, employed, assumed) in enumerate(
            FIG7_STRATEGIES
        ):
            detector = StrategyAwareDetector(get_strategy(assumed))
            sweep = sweep_strategies(
                chain,
                detector,
                {series_label: (employed, n_services)},
                horizon=config.horizon,
                n_runs=config.n_runs,
                seed=children[
                    model_index * len(FIG7_STRATEGIES) + strategy_index
                ],
                model_label=label,
                engine=config.engine,
                workers=config.workers,
            )
            stats = sweep.statistics[series_label]
            series_list.extend(sweep.series())
            scalars[f"{label}/{series_label}/tracking"] = stats.tracking_accuracy
        groups[label] = series_list
    return ExperimentResult(
        experiment_id="fig7",
        description=(
            "Tracking accuracy of the advanced (strategy-aware) eavesdropper "
            f"with N = {n_services}"
        ),
        groups=groups,
        scalars=scalars,
        config=config.to_dict(),
    )
