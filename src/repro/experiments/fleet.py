"""The multi-user fleet experiment: crowd privacy and per-user cost.

The paper's figures evaluate one user against an eavesdropper who sees
only that user's services.  The fleet experiment runs the shared-MEC
regime instead: ``M`` users co-hosted on one capacity-constrained grid
deployment, every placement resolved by the capacity engine, and the
eavesdropper scored per user against the union of all service
trajectories.  Two sweeps are reported:

* **population sweep** — detection/tracking accuracy and mean per-user
  cost versus the number of users ``M`` at a fixed site capacity
  (crowd-blending: per-user detection shrinks as the crowd grows);
* **capacity sweep** — the same metrics versus the per-site capacity at a
  fixed population (capacity pressure: tight sites reject migrations,
  which lowers migration cost but decouples services from their users).

Every sweep point gets its own child of the config seed (mixed with the
experiment id), points are independent and mapped over a process pool
when ``config.workers`` asks for one, and the fleet Monte-Carlo inside a
point is itself sharded bit-identically — so the whole experiment result
is a pure function of the config, cacheable like every other experiment.
"""

from __future__ import annotations

from ..core.eavesdropper.detector import MaximumLikelihoodDetector
from ..core.strategies.base import get_strategy
from ..mec.fleet import FleetSimulation, FleetSimulationConfig, run_fleet_monte_carlo
from ..mec.topology import MECTopology
from ..mobility.grid import GridTopology
from ..mobility.models import paper_synthetic_models
from ..sim.config import FleetExperimentConfig
from ..sim.parallel import parallel_map
from ..sim.results import ExperimentResult, SeriesResult
from ..sim.seeding import spawn_sequences
from ..telemetry import NULL_RECORDER

__all__ = ["run_fleet_experiment", "grid_dimensions"]


def grid_dimensions(n_cells: int) -> tuple[int, int]:
    """The densest (rows, cols) grid factorisation of ``n_cells``."""
    if n_cells < 1:
        raise ValueError("n_cells must be positive")
    rows = int(n_cells**0.5)
    while n_cells % rows:
        rows -= 1
    return rows, n_cells // rows


def _fleet_point(task) -> "tuple[dict[str, float], dict | None]":
    """One (population, capacity) fleet point; module-level for pools.

    Returns the point's numbers plus the point-local telemetry state
    (``None`` when telemetry is off) so the sweep driver can merge the
    per-point recorders back with worker attribution.
    """
    (
        chain,
        n_cells,
        capacity,
        n_users,
        n_chaffs,
        horizon,
        strategy_name,
        n_runs,
        child,
        engine,
        workers,
        chunk_slots,
        regions,
        run_stack,
        spec,
    ) = task
    recorder = NULL_RECORDER if spec is None else spec.build()
    rows, cols = grid_dimensions(n_cells)
    topology = MECTopology.from_grid(GridTopology(rows, cols), capacity=capacity)
    simulation = FleetSimulation(
        topology,
        chain,
        strategy=get_strategy(strategy_name) if n_chaffs > 0 else None,
        config=FleetSimulationConfig(
            n_users=n_users, horizon=horizon, n_chaffs=n_chaffs
        ),
    )
    with recorder.span("point", users=n_users, capacity=capacity):
        statistics = run_fleet_monte_carlo(
            simulation,
            n_runs=n_runs,
            seed=child,
            detector=MaximumLikelihoodDetector(),
            workers=workers,
            engine=engine,
            chunk_slots=chunk_slots,
            regions=regions,
            run_stack=run_stack,
            recorder=recorder,
        )
    point = {
        "detection": statistics.mean_detection,
        "tracking": statistics.mean_tracking,
        "per_user_cost": statistics.mean_cost_per_user,
        "migrations": statistics.mean_migrations,
        "rejected": statistics.mean_rejected,
        "spilled": statistics.mean_spilled,
    }
    return point, (recorder.to_state() if spec is not None else None)


def _sweep_series(
    points: list[dict[str, float]], index: list[int]
) -> list[SeriesResult]:
    """The four reported series of one sweep."""
    return [
        SeriesResult.from_array(
            "detection-accuracy", [p["detection"] for p in points], index=index
        ),
        SeriesResult.from_array(
            "tracking-accuracy", [p["tracking"] for p in points], index=index
        ),
        SeriesResult.from_array(
            "per-user-cost", [p["per_user_cost"] for p in points], index=index
        ),
        SeriesResult.from_array(
            "rejected-migrations", [p["rejected"] for p in points], index=index
        ),
    ]


def run_fleet_experiment(
    config: FleetExperimentConfig | None = None,
    recorder=NULL_RECORDER,
) -> ExperimentResult:
    """Crowd privacy and per-user cost vs population size and site capacity."""
    config = config or FleetExperimentConfig()
    chain = paper_synthetic_models(
        config.n_cells, seed=config.seed, backend=config.backend
    )[config.mobility_model]
    populations = list(config.populations())
    capacities = list(config.capacities())
    children = spawn_sequences(
        config.seed, len(populations) + len(capacities), key="fleet"
    )
    # One sweep point cannot use grid parallelism, so hand the workers to
    # the fleet's run-sharding layer instead (mirrors sweep_strategies).
    n_points = len(populations) + len(capacities)
    point_workers = config.workers if n_points == 1 else 1
    spec = recorder.spawn_spec() if recorder.enabled else None
    tasks = []
    for index, n_users in enumerate(populations):
        tasks.append(
            (
                chain,
                config.n_cells,
                config.site_capacity,
                n_users,
                config.n_chaffs,
                config.horizon,
                config.strategy,
                config.n_runs,
                children[index],
                "stream" if config.stream else config.engine,
                point_workers,
                config.chunk_slots,
                config.regions,
                config.run_stack,
                spec,
            )
        )
    for index, capacity in enumerate(capacities):
        tasks.append(
            (
                chain,
                config.n_cells,
                capacity,
                config.n_users,
                config.n_chaffs,
                config.horizon,
                config.strategy,
                config.n_runs,
                children[len(populations) + index],
                "stream" if config.stream else config.engine,
                point_workers,
                config.chunk_slots,
                config.regions,
                config.run_stack,
                spec,
            )
        )
    outcomes = parallel_map(
        _fleet_point,
        tasks,
        workers=1 if n_points == 1 else config.workers,
        recorder=recorder,
    )
    for index, (_, state) in enumerate(outcomes):
        if state is not None:
            recorder.merge(state, worker=index + 1)
    points = [point for point, _ in outcomes]
    population_points = points[: len(populations)]
    capacity_points = points[len(populations) :]
    groups = {
        f"population (capacity = {config.site_capacity})": _sweep_series(
            population_points, populations
        ),
        f"capacity (users = {config.n_users})": _sweep_series(
            capacity_points, capacities
        ),
    }
    largest = population_points[-1]
    tightest = capacity_points[0]
    scalars = {
        "detection_at_max_population": largest["detection"],
        "per_user_cost_at_max_population": largest["per_user_cost"],
        "rejected_at_min_capacity": tightest["rejected"],
        "crowd_blending_gain": population_points[0]["detection"]
        - largest["detection"],
    }
    return ExperimentResult(
        experiment_id="fleet",
        description=(
            "Multi-user capacity-aware fleet: per-user detection/tracking "
            "accuracy and cost vs population size and site capacity"
        ),
        groups=groups,
        scalars=scalars,
        config=config.to_dict(),
    )
