"""Fig. 6: empirical CDF of the per-slot log-likelihood difference ``c_t``.

The decay results of Section V hinge on ``E[c_t] < 0``; Fig. 6 shows the
distribution of ``c_t`` under the CML and MO strategies for each mobility
model.  We reproduce the CDF series and also report the mean ``c_t``
(whose sign is the decay condition) as scalars.
"""

from __future__ import annotations

import numpy as np

from ..analysis.loglik import simulate_ct_samples
from ..mobility.models import paper_synthetic_models
from ..sim.config import SyntheticExperimentConfig
from ..sim.results import ExperimentResult, SeriesResult
from ..sim.seeding import spawn_sequences

__all__ = ["run_fig6"]

#: Strategies whose c_t distribution Fig. 6 plots.
_STRATEGIES = ("CML", "MO")


def run_fig6(
    config: SyntheticExperimentConfig | None = None, *, n_cdf_points: int = 200
) -> ExperimentResult:
    """Simulate ``c_t`` samples and build their empirical CDFs."""
    config = config or SyntheticExperimentConfig()
    if n_cdf_points < 2:
        raise ValueError("n_cdf_points must be at least 2")
    models = paper_synthetic_models(
        config.n_cells, seed=config.seed, backend=config.backend
    )
    groups: dict[str, list[SeriesResult]] = {}
    scalars: dict[str, float] = {}
    # Fig. 6 pools c_t over runs; far fewer runs than Fig. 5 are needed for
    # a stable CDF, so cap the simulation effort.
    n_runs = min(config.n_runs, 100)
    n_models = len(config.mobility_models)
    children = spawn_sequences(
        config.seed, n_models * len(_STRATEGIES), key="fig6"
    )
    for model_index, label in enumerate(config.mobility_models):
        chain = models[label]
        series_list = []
        for strategy_index, strategy_name in enumerate(_STRATEGIES):
            rng = np.random.default_rng(
                children[model_index * len(_STRATEGIES) + strategy_index]
            )
            samples = simulate_ct_samples(
                chain, strategy_name, config.horizon, n_runs, rng
            )
            grid = np.linspace(samples.min(), samples.max(), n_cdf_points)
            cdf = np.searchsorted(np.sort(samples), grid, side="right") / samples.size
            series_list.append(
                SeriesResult.from_array(
                    strategy_name,
                    cdf,
                    index=grid,
                    mean_ct=float(samples.mean()),
                    std_ct=float(samples.std()),
                )
            )
            scalars[f"{label}/{strategy_name}/mean_ct"] = float(samples.mean())
        groups[label] = series_list
    return ExperimentResult(
        experiment_id="fig6",
        description="CDF of the per-slot log-likelihood difference c_t (CML, MO)",
        groups=groups,
        scalars=scalars,
        config=config.to_dict(),
    )
