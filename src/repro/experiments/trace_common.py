"""Shared machinery for the trace-driven experiments (Figs. 8-10).

Builds the synthetic taxi dataset (the CRAWDAD substitute documented in
DESIGN.md), fits the population mobility model, and provides the per-user
ML tracking evaluation used by Figs. 9 and 10.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..core.eavesdropper.detector import MaximumLikelihoodDetector, TrajectoryDetector
from ..core.strategies.base import ChaffStrategy
from ..geo.towers import TowerPlacementConfig, generate_towers
from ..geo.voronoi import VoronoiQuantizer
from ..sim.config import TraceExperimentConfig
from ..sim.seeding import spawn_generators, spawn_sequences
from ..traces.preprocess import CellTrajectoryDataset, TracePipeline
from ..traces.taxi import TaxiFleetConfig, TaxiFleetGenerator

__all__ = [
    "build_taxi_dataset",
    "per_user_tracking_accuracy",
    "protected_user_accuracy",
    "top_k_tracked_users",
]


def _dataset_key(config: TraceExperimentConfig) -> tuple:
    return (config.n_nodes, config.horizon, config.n_towers, config.seed)


@lru_cache(maxsize=8)
def _build_taxi_dataset_cached(key: tuple) -> CellTrajectoryDataset:
    n_nodes, horizon, n_towers, seed = key
    rng, tower_rng = spawn_generators(seed, 2, key="taxi-world")
    towers = generate_towers(
        TowerPlacementConfig(n_towers=n_towers), rng=tower_rng
    )
    quantizer = VoronoiQuantizer(towers)
    fleet = TaxiFleetGenerator(
        TaxiFleetConfig(n_nodes=n_nodes, duration_minutes=float(horizon + 10))
    )
    traces = fleet.generate(rng)
    pipeline = TracePipeline(quantizer=quantizer, horizon_slots=horizon)
    return pipeline.run(traces)


def build_taxi_dataset(config: TraceExperimentConfig) -> CellTrajectoryDataset:
    """Build (and cache) the synthetic taxi dataset for a configuration."""
    return _build_taxi_dataset_cached(_dataset_key(config))


def per_user_tracking_accuracy(
    dataset: CellTrajectoryDataset,
    *,
    n_detection_seeds: int = 20,
    seed: "int | np.random.SeedSequence" = 0,
) -> np.ndarray:
    """Fig. 9(a): per-user tracking accuracy without chaffs.

    The eavesdropper runs the ML detector once over all observed
    trajectories (the whole fleet); the accuracy for user ``u`` is the
    fraction of slots in which the detected trajectory's cell coincides
    with user ``u``'s cell.  Ties between equally likely trajectories (a
    real phenomenon when several nodes park at a popular cell) are broken
    uniformly at random, so the detection is averaged over
    ``n_detection_seeds`` independent tie-breaks (one spawned child
    generator each, so tie-break streams never overlap across ``seed``
    values).
    """
    if n_detection_seeds < 1:
        raise ValueError("n_detection_seeds must be positive")
    detector = MaximumLikelihoodDetector()
    trajectories = dataset.trajectories
    chain = dataset.mobility_model
    accuracies = np.zeros(dataset.n_nodes, dtype=float)
    for rng in spawn_generators(seed, n_detection_seeds):
        outcome = detector.detect(chain, trajectories, rng)
        chosen = trajectories[outcome.chosen_index]
        matches = (trajectories == chosen[None, :]).mean(axis=1)
        accuracies += matches
    return accuracies / n_detection_seeds


def top_k_tracked_users(
    dataset: CellTrajectoryDataset, k: int, *, seed: int = 0
) -> list[int]:
    """Row indices of the ``k`` users tracked most accurately without chaffs."""
    if k < 1:
        raise ValueError("k must be positive")
    accuracies = per_user_tracking_accuracy(dataset, seed=seed)
    order = np.argsort(-accuracies, kind="stable")
    return [int(i) for i in order[:k]]


def protected_user_accuracy(
    dataset: CellTrajectoryDataset,
    user_row: int,
    strategy: ChaffStrategy | None,
    detector: TrajectoryDetector,
    *,
    n_chaffs: int = 1,
    n_detection_seeds: int = 10,
    seed: "int | np.random.SeedSequence" = 0,
) -> float:
    """Tracking accuracy for one protected user (Figs. 9(b) and 10).

    The observed set is the whole fleet plus the chaffs generated for the
    protected user (``strategy=None`` reproduces the no-chaff bar).  The
    accuracy is the fraction of slots where the detected trajectory's cell
    coincides with the protected user's cell, averaged over detection
    tie-break seeds (and over chaff randomness for randomised strategies).
    """
    if not 0 <= user_row < dataset.n_nodes:
        raise ValueError("user_row out of range")
    if n_chaffs < 0:
        raise ValueError("n_chaffs must be non-negative")
    trajectories = dataset.trajectories
    chain = dataset.mobility_model
    user = trajectories[user_row]
    total = 0.0
    # Children: one per detection tie-break plus a dedicated one for the
    # deterministic-chaff precomputation (spawned, never seed arithmetic).
    children = spawn_sequences(seed, n_detection_seeds + 1)
    fixed_chaffs = None
    if strategy is not None and n_chaffs > 0 and strategy.is_deterministic:
        # Deterministic strategies produce the same chaffs regardless of the
        # detection tie-break seed; compute them once.
        fixed_chaffs = strategy.generate(
            chain, user, n_chaffs, np.random.default_rng(children[-1])
        )
    for child in children[:n_detection_seeds]:
        rng = np.random.default_rng(child)
        if strategy is not None and n_chaffs > 0:
            chaffs = (
                fixed_chaffs
                if fixed_chaffs is not None
                else strategy.generate(chain, user, n_chaffs, rng)
            )
            observed = np.concatenate([trajectories, chaffs], axis=0)
        else:
            observed = trajectories
        outcome = detector.detect(chain, observed, rng)
        chosen = observed[outcome.chosen_index]
        total += float((chosen == user).mean())
    return total / n_detection_seeds
