"""Fig. 4 + the temporal-skewness table (Section VII-A1).

Reproduces the steady-state distributions of the four synthetic mobility
models and the average KL distance between transition-matrix rows that
the paper reports as 0.44 / 0.34 / 8.18 / 8.48 for models (a)-(d).
"""

from __future__ import annotations

from ..analysis.information import spatial_skewness, temporal_skewness
from ..mobility.models import paper_synthetic_models
from ..sim.config import SyntheticExperimentConfig
from ..sim.results import ExperimentResult, SeriesResult

__all__ = ["run_fig4"]


def run_fig4(config: SyntheticExperimentConfig | None = None) -> ExperimentResult:
    """Compute steady-state distributions and skewness measures.

    Returns an :class:`ExperimentResult` with one group per mobility model
    containing its stationary distribution, and scalar entries
    ``kl/<model>`` (temporal skewness) and ``spatial/<model>``.
    """
    config = config or SyntheticExperimentConfig()
    models = paper_synthetic_models(
        config.n_cells, seed=config.seed, backend=config.backend
    )
    groups: dict[str, list[SeriesResult]] = {}
    scalars: dict[str, float] = {}
    for label in config.mobility_models:
        if label not in models:
            raise KeyError(f"unknown mobility model {label!r}")
        chain = models[label]
        groups[label] = [
            SeriesResult.from_array(
                "steady-state",
                chain.stationary,
                index=list(range(1, chain.n_states + 1)),
            )
        ]
        scalars[f"kl/{label}"] = temporal_skewness(chain)
        scalars[f"spatial/{label}"] = spatial_skewness(chain)
    return ExperimentResult(
        experiment_id="fig4",
        description=(
            "Steady-state distributions of the four synthetic mobility models "
            "and their temporal (KL) / spatial skewness"
        ),
        groups=groups,
        scalars=scalars,
        config=config.to_dict(),
    )
