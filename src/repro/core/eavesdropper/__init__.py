"""Eavesdropper models: baseline ML detector and strategy-aware detector."""

from .detector import (
    BatchDetectionOutcome,
    DetectionOutcome,
    MaximumLikelihoodDetector,
    RandomGuessDetector,
    TrajectoryDetector,
    trajectory_log_likelihoods,
)
from .advanced import StrategyAwareDetector
from .online import (
    BayesianPosteriorTracker,
    OnlineTrackingResult,
    PrefixMLTracker,
    prefix_log_likelihood_scores,
)

__all__ = [
    "BatchDetectionOutcome",
    "DetectionOutcome",
    "MaximumLikelihoodDetector",
    "RandomGuessDetector",
    "TrajectoryDetector",
    "trajectory_log_likelihoods",
    "StrategyAwareDetector",
    "BayesianPosteriorTracker",
    "OnlineTrackingResult",
    "PrefixMLTracker",
    "prefix_log_likelihood_scores",
]
