"""Eavesdropper models: baseline ML detector and strategy-aware detector."""

from .detector import (
    DetectionOutcome,
    MaximumLikelihoodDetector,
    RandomGuessDetector,
    TrajectoryDetector,
    trajectory_log_likelihoods,
)
from .advanced import StrategyAwareDetector
from .online import BayesianPosteriorTracker, OnlineTrackingResult, PrefixMLTracker

__all__ = [
    "DetectionOutcome",
    "MaximumLikelihoodDetector",
    "RandomGuessDetector",
    "TrajectoryDetector",
    "trajectory_log_likelihoods",
    "StrategyAwareDetector",
    "BayesianPosteriorTracker",
    "OnlineTrackingResult",
    "PrefixMLTracker",
]
