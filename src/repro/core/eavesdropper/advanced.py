"""Advanced, strategy-aware eavesdropper (Section VI-A).

An advanced eavesdropper knows not only the user's mobility model but also
the chaff control strategy.  For deterministic single-chaff strategies the
chaff trajectory is a fixed function ``Gamma(x_1)`` of the user's
trajectory, so the eavesdropper can unmask chaffs: for every pair of
observed trajectories ``(x, x')`` with ``x' = Gamma(x)``, trajectory
``x'`` is flagged as a chaff and removed from consideration.  ML detection
is then run on the survivors; if every trajectory is flagged the detector
falls back to a uniform guess (the paper's "if both trajectories are
ignored, a random guess is made").

Against randomised strategies (IM, RML, ROO, RMO) the map ``Gamma`` is not
reproducible, so no trajectory matches and the detector degrades to plain
ML detection — which is exactly why the robust variants work.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ...mobility.markov import MarkovChain
from ..strategies.base import ChaffStrategy
from .detector import (
    BatchDetectionOutcome,
    DetectionOutcome,
    MaximumLikelihoodDetector,
    TrajectoryDetector,
    _validate_batch,
    trajectory_log_likelihoods,
)

__all__ = ["StrategyAwareDetector"]


class StrategyAwareDetector(TrajectoryDetector):
    """ML detection preceded by strategy-based chaff filtering.

    Parameters
    ----------
    assumed_strategy:
        The chaff control strategy the eavesdropper believes the user
        employs.  Filtering uses the strategy's deterministic map; if the
        strategy is randomised (``deterministic_map`` returns ``None``)
        no filtering is possible and the detector reduces to plain ML.
    tolerance:
        Log-likelihood tolerance for tie breaking in the ML stage.
    """

    name = "strategy-aware"

    def __init__(
        self, assumed_strategy: ChaffStrategy, *, tolerance: float = 1e-9
    ) -> None:
        self.assumed_strategy = assumed_strategy
        self._ml = MaximumLikelihoodDetector(tolerance=tolerance)
        # Cache of trajectory bytes -> Gamma(trajectory).  The deterministic
        # map is expensive for the OO strategy on large cell sets and the
        # trace-driven experiments re-present the same fleet trajectories
        # many times, so memoisation matters there.
        self._map_cache: dict[bytes, np.ndarray | None] = {}

    def detect(
        self,
        chain: MarkovChain,
        trajectories: np.ndarray,
        rng: np.random.Generator,
        *,
        transition_stack: np.ndarray | None = None,
    ) -> DetectionOutcome:
        observed = np.asarray(trajectories, dtype=np.int64)
        if observed.ndim != 2 or observed.size == 0:
            raise ValueError("trajectories must be a non-empty (N, T) array")
        flagged = self._flag_chaffs(chain, observed)
        survivors = np.flatnonzero(~flagged)
        if survivors.size == 0:
            # Everything was attributed to a chaff: fall back to a guess.
            chosen = int(rng.integers(0, observed.shape[0]))
            return DetectionOutcome(
                chosen_index=chosen,
                scores=np.full(observed.shape[0], np.nan),
                candidate_indices=np.arange(observed.shape[0]),
            )
        scores = np.full(observed.shape[0], -np.inf)
        survivor_scores = trajectory_log_likelihoods(
            chain, observed[survivors], transition_stack
        )
        scores[survivors] = survivor_scores
        best = float(survivor_scores.max())
        candidates = survivors[survivor_scores >= best - self._ml.tolerance]
        chosen = int(rng.choice(candidates))
        return DetectionOutcome(
            chosen_index=chosen, scores=scores, candidate_indices=candidates
        )

    def detect_batch(
        self,
        chain: MarkovChain,
        trajectories: np.ndarray,
        rngs: Sequence[np.random.Generator],
        *,
        transition_stack: np.ndarray | None = None,
    ) -> BatchDetectionOutcome:
        """Run the Section VI-A eavesdropper over an ``(R, N, T)`` batch.

        Chaff flagging stays per run (the deterministic map is a
        per-trajectory computation, memoised across runs), but the ML
        stage scores the *whole* tensor in one vectorised shot instead of
        one likelihood pass per run.  Each run consumes its generator
        exactly like a scalar :meth:`detect` call (one tie-break draw, or
        one uniform guess when every trajectory was flagged), so batched
        and looped execution stay bit-identical.
        """
        observed = _validate_batch(trajectories)
        rngs = list(rngs)
        n_runs, n, _ = observed.shape
        if len(rngs) != n_runs:
            raise ValueError("need exactly one generator per run")
        all_scores = trajectory_log_likelihoods(chain, observed, transition_stack)
        scores = np.full((n_runs, n), -np.inf)
        chosen = np.empty(n_runs, dtype=np.int64)
        candidates_per_run: list[np.ndarray] = []
        for run in range(n_runs):
            flagged = self._flag_chaffs(chain, observed[run])
            survivors = np.flatnonzero(~flagged)
            if survivors.size == 0:
                scores[run] = np.nan
                chosen[run] = int(rngs[run].integers(0, n))
                candidates_per_run.append(np.arange(n))
                continue
            survivor_scores = all_scores[run, survivors]
            scores[run, survivors] = survivor_scores
            best = float(survivor_scores.max())
            candidates = survivors[survivor_scores >= best - self._ml.tolerance]
            chosen[run] = int(rngs[run].choice(candidates))
            candidates_per_run.append(candidates)
        return BatchDetectionOutcome(
            chosen_indices=chosen,
            scores=scores,
            candidate_indices=tuple(candidates_per_run),
        )

    # ------------------------------------------------------------------
    def _flag_chaffs(self, chain: MarkovChain, observed: np.ndarray) -> np.ndarray:
        """Mark trajectories recognised as the strategy's chaff of another."""
        n = observed.shape[0]
        flagged = np.zeros(n, dtype=bool)
        if not self.assumed_strategy.is_deterministic:
            # Randomised strategies have no reproducible map: nothing can
            # be flagged, and caching the per-trajectory ``None``s would
            # only grow the memo across Monte-Carlo batches for nothing.
            return flagged
        maps: list[np.ndarray | None] = []
        for index in range(n):
            key = observed[index].tobytes()
            if key not in self._map_cache:
                self._map_cache[key] = self.assumed_strategy.deterministic_map(
                    chain, observed[index]
                )
            maps.append(self._map_cache[key])
        for source in range(n):
            gamma = maps[source]
            if gamma is None:
                continue
            for target in range(n):
                if target == source:
                    continue
                if np.array_equal(observed[target], gamma):
                    flagged[target] = True
        return flagged
