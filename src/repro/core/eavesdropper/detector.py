"""Eavesdropper detectors (Section III).

The cyber eavesdropper observes ``N`` service trajectories (the user's
plus ``N - 1`` chaffs) and must decide which one belongs to the user.  The
paper's baseline eavesdropper is the maximum likelihood (ML) detector of
Eq. (1): it knows the user's mobility model and picks the trajectory with
the highest likelihood, breaking ties uniformly at random.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ...mobility.markov import MarkovChain

__all__ = [
    "TrajectoryDetector",
    "DetectionOutcome",
    "MaximumLikelihoodDetector",
    "RandomGuessDetector",
    "trajectory_log_likelihoods",
]


def trajectory_log_likelihoods(
    chain: MarkovChain, trajectories: np.ndarray
) -> np.ndarray:
    """Log-likelihood of each row of ``trajectories`` under ``chain``.

    ``trajectories`` is an ``(N, T)`` integer array; returns a length-``N``
    float array.  Vectorised so the trace-driven experiments (N = 174)
    stay fast.
    """
    observed = np.asarray(trajectories, dtype=np.int64)
    if observed.ndim != 2 or observed.size == 0:
        raise ValueError("trajectories must be a non-empty (N, T) array")
    if observed.min() < 0 or observed.max() >= chain.n_states:
        raise ValueError("trajectories contain out-of-range cells")
    log_pi = chain.log_stationary
    log_P = chain.log_transition_matrix
    scores = log_pi[observed[:, 0]].astype(float)
    if observed.shape[1] > 1:
        scores = scores + log_P[observed[:, :-1], observed[:, 1:]].sum(axis=1)
    return scores


@dataclass(frozen=True)
class DetectionOutcome:
    """Result of running a detector on a set of observed trajectories.

    Attributes
    ----------
    chosen_index:
        Index of the trajectory the detector attributes to the user.
    scores:
        Per-trajectory decision scores (log-likelihoods for the ML
        detector; ``nan`` for pure guessing).
    candidate_indices:
        Indices that were still in contention at decision time (after any
        filtering and tie handling).
    """

    chosen_index: int
    scores: np.ndarray
    candidate_indices: np.ndarray


class TrajectoryDetector(abc.ABC):
    """Base class for eavesdropper detectors."""

    name: str = "abstract"

    @abc.abstractmethod
    def detect(
        self,
        chain: MarkovChain,
        trajectories: np.ndarray,
        rng: np.random.Generator,
    ) -> DetectionOutcome:
        """Attribute one of the observed trajectories to the user.

        Parameters
        ----------
        chain:
            The user's mobility model (assumed known to the eavesdropper).
        trajectories:
            ``(N, T)`` integer array of observed service trajectories.
        rng:
            Randomness source for tie breaking / guessing.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class MaximumLikelihoodDetector(TrajectoryDetector):
    """The ML detector of Eq. (1): pick the most likely trajectory.

    Ties (within ``tolerance`` in log-likelihood) are broken uniformly at
    random, matching the paper's treatment of the degenerate equal-prior
    case.
    """

    name = "ML"

    def __init__(self, tolerance: float = 1e-9) -> None:
        if tolerance < 0:
            raise ValueError("tolerance must be non-negative")
        self.tolerance = tolerance

    def detect(
        self,
        chain: MarkovChain,
        trajectories: np.ndarray,
        rng: np.random.Generator,
    ) -> DetectionOutcome:
        scores = trajectory_log_likelihoods(chain, trajectories)
        best = float(scores.max())
        candidates = np.flatnonzero(scores >= best - self.tolerance)
        chosen = int(rng.choice(candidates))
        return DetectionOutcome(
            chosen_index=chosen, scores=scores, candidate_indices=candidates
        )


class RandomGuessDetector(TrajectoryDetector):
    """An eavesdropper with no model: guesses uniformly among trajectories."""

    name = "random"

    def detect(
        self,
        chain: MarkovChain,
        trajectories: np.ndarray,
        rng: np.random.Generator,
    ) -> DetectionOutcome:
        observed = np.asarray(trajectories, dtype=np.int64)
        if observed.ndim != 2 or observed.size == 0:
            raise ValueError("trajectories must be a non-empty (N, T) array")
        n = observed.shape[0]
        chosen = int(rng.integers(0, n))
        return DetectionOutcome(
            chosen_index=chosen,
            scores=np.full(n, np.nan),
            candidate_indices=np.arange(n),
        )
