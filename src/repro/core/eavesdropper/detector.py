"""Eavesdropper detectors (Section III).

The cyber eavesdropper observes ``N`` service trajectories (the user's
plus ``N - 1`` chaffs) and must decide which one belongs to the user.  The
paper's baseline eavesdropper is the maximum likelihood (ML) detector of
Eq. (1): it knows the user's mobility model and picks the trajectory with
the highest likelihood, breaking ties uniformly at random.
"""

from __future__ import annotations

import abc
import inspect
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ...mobility.markov import MarkovChain

__all__ = [
    "TrajectoryDetector",
    "DetectionOutcome",
    "BatchDetectionOutcome",
    "MaximumLikelihoodDetector",
    "RandomGuessDetector",
    "trajectory_log_likelihoods",
]


def trajectory_log_likelihoods(
    chain: MarkovChain,
    trajectories: np.ndarray,
    transition_stack: np.ndarray | None = None,
) -> np.ndarray:
    """Log-likelihood of each trajectory in ``trajectories`` under ``chain``.

    The time axis is last: an ``(N, T)`` array scores one episode's
    observations and returns a length-``N`` float array, while an
    ``(R, N, T)`` Monte-Carlo tensor returns an ``(R, N)`` score matrix —
    the whole batch in one vectorised shot.  ``transition_stack`` scores
    the steps under a time-varying chain (``(T - 1, L, L)`` per-step
    matrices, e.g. a dynamic world's regime schedule) instead of
    ``chain``'s own matrix.
    """
    observed = np.asarray(trajectories, dtype=np.int64)
    if observed.ndim < 2 or observed.size == 0:
        raise ValueError("trajectories must be a non-empty (..., N, T) array")
    if observed.min() < 0 or observed.max() >= chain.n_states:
        raise ValueError("trajectories contain out-of-range cells")
    return chain.log_likelihoods(observed, transition_stack=transition_stack)


@dataclass(frozen=True)
class DetectionOutcome:
    """Result of running a detector on a set of observed trajectories.

    Attributes
    ----------
    chosen_index:
        Index of the trajectory the detector attributes to the user.
    scores:
        Per-trajectory decision scores (log-likelihoods for the ML
        detector; ``nan`` for pure guessing).
    candidate_indices:
        Indices that were still in contention at decision time (after any
        filtering and tie handling).
    """

    chosen_index: int
    scores: np.ndarray
    candidate_indices: np.ndarray


@dataclass(frozen=True)
class BatchDetectionOutcome:
    """Result of running a detector over a whole Monte-Carlo batch.

    Attributes
    ----------
    chosen_indices:
        Length-``R`` array: per run, the trajectory index attributed to
        the user.
    scores:
        ``(R, N)`` decision-score matrix.
    candidate_indices:
        Per-run arrays of indices still in contention at decision time.
    """

    chosen_indices: np.ndarray
    scores: np.ndarray
    candidate_indices: tuple[np.ndarray, ...]

    @property
    def n_runs(self) -> int:
        """Number of Monte-Carlo runs in the batch."""
        return int(self.chosen_indices.size)

    def outcome(self, run: int) -> DetectionOutcome:
        """The per-episode :class:`DetectionOutcome` of one run."""
        return DetectionOutcome(
            chosen_index=int(self.chosen_indices[run]),
            scores=self.scores[run],
            candidate_indices=self.candidate_indices[run],
        )


def _validate_batch(trajectories: np.ndarray) -> np.ndarray:
    observed = np.asarray(trajectories, dtype=np.int64)
    if observed.ndim != 3 or observed.size == 0:
        raise ValueError("trajectories must be a non-empty (R, N, T) array")
    return observed


class TrajectoryDetector(abc.ABC):
    """Base class for eavesdropper detectors."""

    name: str = "abstract"

    @abc.abstractmethod
    def detect(
        self,
        chain: MarkovChain,
        trajectories: np.ndarray,
        rng: np.random.Generator,
    ) -> DetectionOutcome:
        """Attribute one of the observed trajectories to the user.

        Parameters
        ----------
        chain:
            The user's mobility model (assumed known to the eavesdropper).
        trajectories:
            ``(N, T)`` integer array of observed service trajectories.
        rng:
            Randomness source for tie breaking / guessing.

        Scoring detectors additionally accept a ``transition_stack``
        keyword (``(T - 1, L, L)`` per-step matrices) to score against a
        time-varying chain; see :class:`MaximumLikelihoodDetector`.
        """

    def detect_batch(
        self,
        chain: MarkovChain,
        trajectories: np.ndarray,
        rngs: Sequence[np.random.Generator],
        *,
        transition_stack: np.ndarray | None = None,
    ) -> BatchDetectionOutcome:
        """Run detection over an ``(R, N, T)`` Monte-Carlo batch.

        The default implementation loops :meth:`detect` with each run's own
        generator, so every detector works with the batched engine and
        reproduces the looped engine's decisions exactly; vectorising
        subclasses override this.  ``transition_stack`` is forwarded only
        when set, so detectors that cannot score time-varying chains keep
        working in static worlds.
        """
        observed = _validate_batch(trajectories)
        rngs = list(rngs)
        if len(rngs) != observed.shape[0]:
            raise ValueError("need exactly one generator per run")
        if transition_stack is None:
            extra = {}
        else:
            if "transition_stack" not in inspect.signature(self.detect).parameters:
                raise NotImplementedError(
                    f"detector {self.name!r} cannot score a time-varying "
                    "chain (its detect() takes no transition_stack)"
                )
            extra = {"transition_stack": transition_stack}
        outcomes = [
            self.detect(chain, observed[run], rngs[run], **extra)
            for run in range(observed.shape[0])
        ]
        return BatchDetectionOutcome(
            chosen_indices=np.array(
                [outcome.chosen_index for outcome in outcomes], dtype=np.int64
            ),
            scores=np.stack([outcome.scores for outcome in outcomes], axis=0),
            candidate_indices=tuple(
                outcome.candidate_indices for outcome in outcomes
            ),
        )

    def detect_crowd(
        self,
        chain: MarkovChain,
        trajectories: np.ndarray,
        rngs: Sequence[np.random.Generator],
        *,
        transition_stack: np.ndarray | None = None,
    ) -> np.ndarray:
        """Many independent decisions over *one* ``(N, T)`` observation set.

        Used by the fleet layer: every user's eavesdropper sees the same
        merged crowd, so only the per-decision randomness (tie breaking,
        guessing) differs.  Decision ``k`` consumes exactly the draws a
        scalar :meth:`detect` call with ``rngs[k]`` would, so overriding
        implementations stay bit-identical to this default — which
        broadcasts the crowd into :meth:`detect_batch` (a zero-copy view,
        but detectors that score trajectories recompute the identical
        scores per decision; those subclasses override to score once).

        Returns the length-``len(rngs)`` array of chosen row indices.
        """
        observed = np.asarray(trajectories, dtype=np.int64)
        if observed.ndim != 2 or observed.size == 0:
            raise ValueError("trajectories must be a non-empty (N, T) array")
        rngs = list(rngs)
        if not rngs:
            raise ValueError("need at least one generator")
        crowd = np.broadcast_to(observed, (len(rngs), *observed.shape))
        return self.detect_batch(
            chain, crowd, rngs, transition_stack=transition_stack
        ).chosen_indices

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class MaximumLikelihoodDetector(TrajectoryDetector):
    """The ML detector of Eq. (1): pick the most likely trajectory.

    Ties (within ``tolerance`` in log-likelihood) are broken uniformly at
    random, matching the paper's treatment of the degenerate equal-prior
    case.
    """

    name = "ML"

    def __init__(self, tolerance: float = 1e-9) -> None:
        if tolerance < 0:
            raise ValueError("tolerance must be non-negative")
        self.tolerance = tolerance

    def detect(
        self,
        chain: MarkovChain,
        trajectories: np.ndarray,
        rng: np.random.Generator,
        *,
        transition_stack: np.ndarray | None = None,
    ) -> DetectionOutcome:
        scores = trajectory_log_likelihoods(chain, trajectories, transition_stack)
        best = float(scores.max())
        candidates = np.flatnonzero(scores >= best - self.tolerance)
        chosen = int(rng.choice(candidates))
        return DetectionOutcome(
            chosen_index=chosen, scores=scores, candidate_indices=candidates
        )

    def detect_batch(
        self,
        chain: MarkovChain,
        trajectories: np.ndarray,
        rngs: Sequence[np.random.Generator],
        *,
        transition_stack: np.ndarray | None = None,
    ) -> BatchDetectionOutcome:
        """Score the whole ``(R, N, T)`` tensor in one vectorised shot.

        Only the per-run tie-break draw still touches each run's generator
        (it must, to keep the random streams aligned with the looped
        engine).
        """
        observed = _validate_batch(trajectories)
        rngs = list(rngs)
        n_runs = observed.shape[0]
        if len(rngs) != n_runs:
            raise ValueError("need exactly one generator per run")
        scores = trajectory_log_likelihoods(chain, observed, transition_stack)
        chosen = np.empty(n_runs, dtype=np.int64)
        candidates_per_run: list[np.ndarray] = []
        best = scores.max(axis=1)
        for run in range(n_runs):
            candidates = np.flatnonzero(scores[run] >= best[run] - self.tolerance)
            chosen[run] = int(rngs[run].choice(candidates))
            candidates_per_run.append(candidates)
        return BatchDetectionOutcome(
            chosen_indices=chosen,
            scores=scores,
            candidate_indices=tuple(candidates_per_run),
        )

    def detect_crowd(
        self,
        chain: MarkovChain,
        trajectories: np.ndarray,
        rngs: Sequence[np.random.Generator],
        *,
        transition_stack: np.ndarray | None = None,
    ) -> np.ndarray:
        """Score the shared crowd once; only tie-breaks differ per decision.

        The scores (and hence the candidate set) are identical for every
        decision, so broadcasting them through :meth:`detect_batch` would
        recompute the same log-likelihoods ``len(rngs)`` times.  Each
        generator still makes exactly its one tie-break draw, keeping the
        choices bit-identical to the broadcast path.
        """
        observed = np.asarray(trajectories, dtype=np.int64)
        if observed.ndim != 2 or observed.size == 0:
            raise ValueError("trajectories must be a non-empty (N, T) array")
        scores = trajectory_log_likelihoods(chain, observed, transition_stack)
        candidates = np.flatnonzero(scores >= float(scores.max()) - self.tolerance)
        return np.array(
            [int(rng.choice(candidates)) for rng in rngs], dtype=np.int64
        )


class RandomGuessDetector(TrajectoryDetector):
    """An eavesdropper with no model: guesses uniformly among trajectories."""

    name = "random"

    def detect(
        self,
        chain: MarkovChain,
        trajectories: np.ndarray,
        rng: np.random.Generator,
    ) -> DetectionOutcome:
        observed = np.asarray(trajectories, dtype=np.int64)
        if observed.ndim != 2 or observed.size == 0:
            raise ValueError("trajectories must be a non-empty (N, T) array")
        n = observed.shape[0]
        chosen = int(rng.integers(0, n))
        return DetectionOutcome(
            chosen_index=chosen,
            scores=np.full(n, np.nan),
            candidate_indices=np.arange(n),
        )

    def detect_batch(
        self,
        chain: MarkovChain,
        trajectories: np.ndarray,
        rngs: Sequence[np.random.Generator],
        *,
        transition_stack: np.ndarray | None = None,
    ) -> BatchDetectionOutcome:
        """Guess uniformly per run; no scoring work to vectorise (the
        time-varying chain is irrelevant to a guesser)."""
        observed = _validate_batch(trajectories)
        rngs = list(rngs)
        n_runs, n, _ = observed.shape
        if len(rngs) != n_runs:
            raise ValueError("need exactly one generator per run")
        chosen = np.array(
            [int(rng.integers(0, n)) for rng in rngs], dtype=np.int64
        )
        return BatchDetectionOutcome(
            chosen_indices=chosen,
            scores=np.full((n_runs, n), np.nan),
            candidate_indices=tuple(np.arange(n) for _ in range(n_runs)),
        )
