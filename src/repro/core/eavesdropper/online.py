"""Online (per-slot) eavesdroppers: prefix ML detection and Bayesian posterior.

The paper's eavesdropper makes one ML decision after observing the whole
horizon.  A practical eavesdropper tracks the user *while* the services
migrate, re-evaluating its belief every slot.  This module provides two
such online attackers, used in the extension experiments:

* :class:`PrefixMLTracker` — at every slot, run the ML detector of Eq. (1)
  on the trajectory prefixes observed so far and output the chosen
  trajectory's current cell;
* :class:`BayesianPosteriorTracker` — maintain the posterior probability
  that each observed trajectory is the user's (uniform prior, likelihood
  from the mobility model) and estimate the user's cell as the posterior
  mode over cells.  This is the Bayes-optimal per-slot attack under the
  equal-prior assumption and upper-bounds the prefix-ML attack.

Both trackers report a per-slot tracking indicator against the true user
trajectory, so their accuracy can be compared directly with the offline
detector used in the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ...mobility.markov import MarkovChain
from ...numerics import safe_log

__all__ = [
    "OnlineTrackingResult",
    "PrefixMLTracker",
    "BayesianPosteriorTracker",
    "prefix_log_likelihood_scores",
]


def prefix_log_likelihood_scores(
    chain: MarkovChain,
    observed: np.ndarray,
    transition_stack: np.ndarray | None = None,
) -> np.ndarray:
    """Cumulative prefix log-likelihoods of an ``(..., N, T)`` tensor.

    Element ``[..., u, t]`` is the log-likelihood of trajectory ``u``'s
    prefix ``x_u[0..t]`` under ``chain``.  Computed in one vectorised shot
    (per-step log-probability indexing followed by a cumulative sum along
    time), so a whole ``(R, N, T)`` Monte-Carlo batch costs a single numpy
    pass instead of ``R * T`` Python iterations.  ``transition_stack``
    (``(T - 1, L, L)`` per-step matrices, e.g. a dynamic world's regime
    schedule) scores the step into slot ``t`` under ``stack[t - 1]``
    instead of ``chain``'s own matrix, so online trackers follow the true
    time-varying chain; the initial term stays the stationary prior.
    """
    traj = np.asarray(observed, dtype=np.int64)
    if traj.ndim < 2 or traj.size == 0:
        raise ValueError("observed must be a non-empty (..., N, T) array")
    steps = np.empty(traj.shape, dtype=float)
    steps[..., 0] = chain.log_stationary[traj[..., 0]]
    if traj.shape[-1] > 1:
        if transition_stack is None:
            steps[..., 1:] = chain.log_transition_entries(
                traj[..., :-1], traj[..., 1:]
            )
        else:
            stack = np.asarray(transition_stack, dtype=float)
            n = chain.n_states
            if stack.ndim != 3 or stack.shape != (traj.shape[-1] - 1, n, n):
                raise ValueError(
                    f"transition_stack must be ({traj.shape[-1] - 1}, {n}, {n}), "
                    f"got {stack.shape}"
                )
            steps[..., 1:] = safe_log(stack)[
                np.arange(traj.shape[-1] - 1), traj[..., :-1], traj[..., 1:]
            ]
    return np.cumsum(steps, axis=-1)


@dataclass(frozen=True)
class OnlineTrackingResult:
    """Per-slot output of an online eavesdropper.

    Attributes
    ----------
    estimated_cells:
        The eavesdropper's estimate of the user's cell at each slot.
    chosen_indices:
        Index of the trajectory the eavesdropper attributes to the user at
        each slot (argmax of the per-slot score).
    tracked_per_slot:
        Whether ``estimated_cells[t]`` equals the user's true cell.
    posteriors:
        ``(T, N)`` per-slot scores (posterior probabilities for the
        Bayesian tracker, normalised likelihood weights for prefix ML).
    """

    estimated_cells: np.ndarray
    chosen_indices: np.ndarray
    tracked_per_slot: np.ndarray
    posteriors: np.ndarray

    @property
    def tracking_accuracy(self) -> float:
        """Time-average per-slot tracking accuracy."""
        return float(self.tracked_per_slot.mean())


def _validate(chain: MarkovChain, observed: np.ndarray, user: np.ndarray) -> tuple:
    observed = np.asarray(observed, dtype=np.int64)
    user = np.asarray(user, dtype=np.int64)
    if observed.ndim != 2 or observed.size == 0:
        raise ValueError("observed trajectories must be a non-empty (N, T) array")
    if user.shape != (observed.shape[1],):
        raise ValueError("user trajectory length must match the observation horizon")
    if observed.min() < 0 or observed.max() >= chain.n_states:
        raise ValueError("observed trajectories contain out-of-range cells")
    return observed, user


def _validate_batch(
    chain: MarkovChain,
    observed: np.ndarray,
    user_trajectories: np.ndarray,
    rngs: Sequence[np.random.Generator],
) -> tuple[np.ndarray, np.ndarray, list[np.random.Generator]]:
    observed = np.asarray(observed, dtype=np.int64)
    users = np.asarray(user_trajectories, dtype=np.int64)
    if observed.ndim != 3 or observed.size == 0:
        raise ValueError("observed trajectories must be a non-empty (R, N, T) array")
    if users.shape != (observed.shape[0], observed.shape[2]):
        raise ValueError("user trajectories must be (R, T) matching the observations")
    if observed.min() < 0 or observed.max() >= chain.n_states:
        raise ValueError("observed trajectories contain out-of-range cells")
    rngs = list(rngs)
    if len(rngs) != observed.shape[0]:
        raise ValueError("need exactly one generator per run")
    return observed, users, rngs


class PrefixMLTracker:
    """Per-slot ML detection on trajectory prefixes."""

    name = "prefix-ml"

    def track(
        self,
        chain: MarkovChain,
        observed: np.ndarray,
        user_trajectory: np.ndarray,
        rng: np.random.Generator,
        *,
        transition_stack: np.ndarray | None = None,
    ) -> OnlineTrackingResult:
        """Track the user slot by slot.

        At slot ``t`` the tracker computes the log-likelihood of every
        observed prefix ``x_u[0..t]`` and outputs the cell of the most
        likely one (ties broken uniformly at random).  With a
        ``transition_stack`` the prefixes are scored under the true
        time-varying chain of a dynamic world.
        """
        observed, user = _validate(chain, observed, user_trajectory)
        prefix_scores = prefix_log_likelihood_scores(
            chain, observed, transition_stack
        )
        return self._decide(prefix_scores, observed, user, rng)

    def track_batch(
        self,
        chain: MarkovChain,
        observed: np.ndarray,
        user_trajectories: np.ndarray,
        rngs: Sequence[np.random.Generator],
        *,
        transition_stack: np.ndarray | None = None,
    ) -> list[OnlineTrackingResult]:
        """Track a whole ``(R, N, T)`` batch, scoring the tensor in one shot.

        Each run's tie-breaks consume that run's generator in the same
        order as :meth:`track`, so batched and looped tracking agree run
        for run.
        """
        observed, users, rngs = _validate_batch(chain, observed, user_trajectories, rngs)
        prefix_scores = prefix_log_likelihood_scores(
            chain, observed, transition_stack
        )
        return [
            self._decide(prefix_scores[run], observed[run], users[run], rngs[run])
            for run in range(observed.shape[0])
        ]

    def _decide(
        self,
        prefix_scores: np.ndarray,
        observed: np.ndarray,
        user: np.ndarray,
        rng: np.random.Generator,
    ) -> OnlineTrackingResult:
        n, horizon = observed.shape
        estimated = np.empty(horizon, dtype=np.int64)
        chosen = np.empty(horizon, dtype=np.int64)
        posteriors = np.empty((horizon, n), dtype=float)
        for t in range(horizon):
            scores = prefix_scores[:, t]
            best = scores.max()
            candidates = np.flatnonzero(scores >= best - 1e-9)
            pick = int(rng.choice(candidates))
            chosen[t] = pick
            estimated[t] = observed[pick, t]
            weights = np.exp(scores - best)
            posteriors[t] = weights / weights.sum()
        return OnlineTrackingResult(
            estimated_cells=estimated,
            chosen_indices=chosen,
            tracked_per_slot=(estimated == user),
            posteriors=posteriors,
        )


class BayesianPosteriorTracker:
    """Bayesian belief over which observed trajectory belongs to the user.

    With a uniform prior over the ``N`` observed trajectories, the posterior
    after ``t`` slots is proportional to the prefix likelihood of each
    trajectory.  The user's cell is estimated as the cell with the largest
    total posterior mass (several trajectories sitting in the same cell pool
    their mass), which can only improve on picking a single trajectory.
    """

    name = "bayesian-posterior"

    def track(
        self,
        chain: MarkovChain,
        observed: np.ndarray,
        user_trajectory: np.ndarray,
        rng: np.random.Generator,
        *,
        transition_stack: np.ndarray | None = None,
    ) -> OnlineTrackingResult:
        """Track the user slot by slot using the posterior cell mode.

        With a ``transition_stack`` the posterior is computed under the
        true time-varying chain of a dynamic world.
        """
        observed, user = _validate(chain, observed, user_trajectory)
        prefix_scores = prefix_log_likelihood_scores(
            chain, observed, transition_stack
        )
        return self._decide(chain, prefix_scores, observed, user, rng)

    def track_batch(
        self,
        chain: MarkovChain,
        observed: np.ndarray,
        user_trajectories: np.ndarray,
        rngs: Sequence[np.random.Generator],
        *,
        transition_stack: np.ndarray | None = None,
    ) -> list[OnlineTrackingResult]:
        """Track a whole ``(R, N, T)`` batch, scoring the tensor in one shot."""
        observed, users, rngs = _validate_batch(chain, observed, user_trajectories, rngs)
        prefix_scores = prefix_log_likelihood_scores(
            chain, observed, transition_stack
        )
        return [
            self._decide(chain, prefix_scores[run], observed[run], users[run], rngs[run])
            for run in range(observed.shape[0])
        ]

    def _decide(
        self,
        chain: MarkovChain,
        prefix_scores: np.ndarray,
        observed: np.ndarray,
        user: np.ndarray,
        rng: np.random.Generator,
    ) -> OnlineTrackingResult:
        n, horizon = observed.shape
        estimated = np.empty(horizon, dtype=np.int64)
        chosen = np.empty(horizon, dtype=np.int64)
        posteriors = np.empty((horizon, n), dtype=float)
        for t in range(horizon):
            log_posterior = prefix_scores[:, t]
            weights = np.exp(log_posterior - log_posterior.max())
            weights = weights / weights.sum()
            posteriors[t] = weights
            chosen[t] = int(np.argmax(weights))
            cell_mass = np.zeros(chain.n_states, dtype=float)
            np.add.at(cell_mass, observed[:, t], weights)
            best_cells = np.flatnonzero(cell_mass >= cell_mass.max() - 1e-12)
            estimated[t] = int(rng.choice(best_cells))
        return OnlineTrackingResult(
            estimated_cells=estimated,
            chosen_indices=chosen,
            tracked_per_slot=(estimated == user),
            posteriors=posteriors,
        )
