"""Core contribution: chaff strategies, eavesdroppers and the privacy game."""

from .game import BatchEpisodeResult, EpisodeResult, PrivacyGame
from .trellis import (
    InfeasibleTrellisError,
    build_trellis_graph,
    most_likely_trajectories,
    most_likely_trajectory,
    most_likely_trajectory_dijkstra,
    trajectory_cost,
)
from .strategies import (
    ChaffStrategy,
    ConstrainedMLStrategy,
    ImpersonatingStrategy,
    MaximumLikelihoodStrategy,
    MyopicOnlineStrategy,
    OptimalOfflineStrategy,
    RobustMLStrategy,
    RobustMyopicOnlineStrategy,
    RobustOptimalOfflineStrategy,
    available_strategies,
    get_strategy,
    solve_optimal_offline,
)
from .eavesdropper import (
    BatchDetectionOutcome,
    MaximumLikelihoodDetector,
    RandomGuessDetector,
    StrategyAwareDetector,
    TrajectoryDetector,
    trajectory_log_likelihoods,
)

__all__ = [
    "BatchEpisodeResult",
    "EpisodeResult",
    "PrivacyGame",
    "InfeasibleTrellisError",
    "build_trellis_graph",
    "most_likely_trajectories",
    "most_likely_trajectory",
    "most_likely_trajectory_dijkstra",
    "trajectory_cost",
    "ChaffStrategy",
    "ConstrainedMLStrategy",
    "ImpersonatingStrategy",
    "MaximumLikelihoodStrategy",
    "MyopicOnlineStrategy",
    "OptimalOfflineStrategy",
    "RobustMLStrategy",
    "RobustMyopicOnlineStrategy",
    "RobustOptimalOfflineStrategy",
    "available_strategies",
    "get_strategy",
    "solve_optimal_offline",
    "BatchDetectionOutcome",
    "MaximumLikelihoodDetector",
    "RandomGuessDetector",
    "StrategyAwareDetector",
    "TrajectoryDetector",
    "trajectory_log_likelihoods",
]
