"""Core contribution: chaff strategies, eavesdroppers and the privacy game."""

from .game import EpisodeResult, PrivacyGame
from .trellis import (
    InfeasibleTrellisError,
    build_trellis_graph,
    most_likely_trajectory,
    most_likely_trajectory_dijkstra,
    trajectory_cost,
)
from .strategies import (
    ChaffStrategy,
    ConstrainedMLStrategy,
    ImpersonatingStrategy,
    MaximumLikelihoodStrategy,
    MyopicOnlineStrategy,
    OptimalOfflineStrategy,
    RobustMLStrategy,
    RobustMyopicOnlineStrategy,
    RobustOptimalOfflineStrategy,
    available_strategies,
    get_strategy,
    solve_optimal_offline,
)
from .eavesdropper import (
    MaximumLikelihoodDetector,
    RandomGuessDetector,
    StrategyAwareDetector,
    TrajectoryDetector,
    trajectory_log_likelihoods,
)

__all__ = [
    "EpisodeResult",
    "PrivacyGame",
    "InfeasibleTrellisError",
    "build_trellis_graph",
    "most_likely_trajectory",
    "most_likely_trajectory_dijkstra",
    "trajectory_cost",
    "ChaffStrategy",
    "ConstrainedMLStrategy",
    "ImpersonatingStrategy",
    "MaximumLikelihoodStrategy",
    "MyopicOnlineStrategy",
    "OptimalOfflineStrategy",
    "RobustMLStrategy",
    "RobustMyopicOnlineStrategy",
    "RobustOptimalOfflineStrategy",
    "available_strategies",
    "get_strategy",
    "solve_optimal_offline",
    "MaximumLikelihoodDetector",
    "RandomGuessDetector",
    "StrategyAwareDetector",
    "TrajectoryDetector",
    "trajectory_log_likelihoods",
]
