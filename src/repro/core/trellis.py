"""Time-expanded trellis graph of Fig. 2 and most-likely-trajectory solvers.

The ML chaff strategy (Section IV-B) and its robust variant reduce to a
shortest-path problem on a trellis whose layer ``t`` holds one vertex per
cell, with edge costs ``-log pi(x)`` from the virtual source into layer 1
and ``-log P(x' | x)`` between consecutive layers.  The minimum-cost path
is the most likely trajectory of length ``T``.

Two solvers are provided:

* :func:`most_likely_trajectory` — a Viterbi-style dynamic program,
  ``O(T L^2)``, used by the library;
* :func:`most_likely_trajectory_dijkstra` — an explicit shortest path on
  the networkx trellis graph, used to cross-validate the DP in tests and
  to stay faithful to the paper's description (Dijkstra on Fig. 2).

Both support an ``allowed`` mask of shape ``(T, L)`` marking which cells a
trajectory may visit at each slot, which is how the robust (RML/ROO)
strategies carve out their exclusion sets.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx
import numpy as np

from ..mobility.markov import MarkovChain
from ..numerics import LOG_FLOOR, safe_log

__all__ = [
    "InfeasibleTrellisError",
    "trajectory_cost",
    "validate_allowed_mask",
    "most_likely_trajectory",
    "most_likely_trajectories",
    "most_likely_trajectory_dijkstra",
    "build_trellis_graph",
]

#: Cost used for structurally forbidden moves; large but finite so that
#: numpy reductions stay well-defined.
_INF = np.inf

#: What the dense DP charges for traversing a zero-probability edge: the
#: floored log of zero.  The sparse kernel adds this as an explicit
#: fallback candidate so pruned/missing edges cost exactly what the dense
#: log matrix charges them.
_FLOOR_COST = float(-np.log(LOG_FLOOR))


class InfeasibleTrellisError(RuntimeError):
    """Raised when no feasible trajectory exists under the given mask."""


def trajectory_cost(chain: MarkovChain, trajectory: Sequence[int] | np.ndarray) -> float:
    """Cost of a trajectory on the trellis (= negative log-likelihood)."""
    return -chain.log_likelihood(trajectory)


def validate_allowed_mask(
    allowed: np.ndarray | None, horizon: int, n_cells: int
) -> np.ndarray:
    """Normalise/validate an ``allowed`` mask; default is all-cells-allowed."""
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    if allowed is None:
        return np.ones((horizon, n_cells), dtype=bool)
    mask = np.asarray(allowed, dtype=bool)
    if mask.shape != (horizon, n_cells):
        raise ValueError(
            f"allowed mask must have shape ({horizon}, {n_cells}), got {mask.shape}"
        )
    if not mask.any(axis=1).all():
        bad = int(np.argmin(mask.any(axis=1)))
        raise InfeasibleTrellisError(f"no allowed cell at slot {bad}")
    return mask


def _predecessor_structure(
    chain: MarkovChain, top_k: int | None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Successor-major (CSC) edge structure ``(indptr, prev_rows, neg_log_w)``.

    Column ``j``'s slice holds the predecessor states with a nonzero
    transition into ``j`` (ascending, so position order matches the dense
    argmin's first-index tie-break) and the corresponding ``-log P`` edge
    costs.  With ``top_k``, each state keeps only its ``top_k``
    highest-probability successors (ties broken toward smaller columns);
    pruned edges fall back to the floor cost like structural zeros.

    Memoised per ``(chain, top_k)`` on the chain instance.
    """
    cache = chain._trellis_predecessors
    if cache is not None and top_k in cache:
        return cache[top_k]
    n = chain.n_states
    rows, cols, probs = chain.transition_edges()
    if top_k is not None:
        if top_k < 1:
            raise ValueError("top_k must be at least 1")
        order = np.lexsort((cols, -probs, rows))
        counts = np.bincount(rows, minlength=n)
        starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
        rank_in_row = np.arange(rows.size) - np.repeat(starts, counts)
        keep = order[rank_in_row < top_k]
        rows, cols, probs = rows[keep], cols[keep], probs[keep]
    order = np.lexsort((rows, cols))
    prev_rows = rows[order].astype(np.int64)
    neg_log_w = -safe_log(probs[order])
    col_counts = np.bincount(cols[order], minlength=n)
    indptr = np.concatenate([[0], np.cumsum(col_counts)]).astype(np.int64)
    structure = (indptr, prev_rows, neg_log_w)
    if cache is None:
        cache = {}
        chain._trellis_predecessors = cache
    cache[top_k] = structure
    return structure


def _sparse_viterbi(
    chain: MarkovChain,
    horizon: int,
    masks: np.ndarray,
    top_k: int | None,
) -> tuple[np.ndarray, np.ndarray]:
    """Batched Viterbi over nonzero-predecessor edges only.

    Produces exactly the dense DP's trajectories (values *and* first-argmin
    tie-breaks): per successor the best nonzero-edge candidate competes
    with a floor-fallback candidate ``min(cost) + _FLOOR_COST`` — what the
    dense kernel charges the cheapest predecessor for a zero edge.  Since
    every stored edge costs at most ``_FLOOR_COST``, the fallback wins
    strictly only when the dense argmin would land on a zero edge, and
    exact ties resolve to the smaller predecessor index, as dense argmin
    does.  Work per step is O(R * nnz) instead of O(R * L^2).
    """
    indptr, prev_rows, neg_w = _predecessor_structure(chain, top_k)
    n_batch = masks.shape[0]
    n = chain.n_states
    nnz = prev_rows.size
    col_counts = np.diff(indptr)
    empty = col_counts == 0
    starts = indptr[:-1]
    positions = np.arange(nnz)
    prev_ext = np.append(prev_rows, n)
    batch_idx = np.arange(n_batch)
    pad_inf = np.full((n_batch, 1), _INF)
    pad_pos = np.full((n_batch, 1), nnz, dtype=np.int64)

    neg_log_pi = -chain.log_stationary
    cost = np.where(masks[:, 0], neg_log_pi[None, :], _INF)
    backpointers = np.zeros((n_batch, horizon, n), dtype=np.int64)
    for t in range(1, horizon):
        candidate = cost[:, prev_rows] + neg_w[None, :]
        nz_best = np.minimum.reduceat(
            np.concatenate([candidate, pad_inf], axis=1), starts, axis=1
        )
        nz_best[:, empty] = _INF
        matches = candidate == np.repeat(nz_best, col_counts, axis=1)
        masked_pos = np.where(matches, positions[None, :], nnz)
        first_pos = np.minimum.reduceat(
            np.concatenate([masked_pos, pad_pos], axis=1), starts, axis=1
        )
        first_pos[:, empty] = nnz
        nz_prev = prev_ext[first_pos]
        floor_prev = np.argmin(cost, axis=1)[:, None]
        floor_best = cost[batch_idx, floor_prev[:, 0]][:, None] + _FLOOR_COST
        use_floor = floor_best < nz_best
        best = np.where(use_floor, floor_best, nz_best)
        prev = np.where(use_floor, floor_prev, nz_prev)
        prev = np.where(
            floor_best == nz_best, np.minimum(nz_prev, floor_prev), prev
        )
        backpointers[:, t] = prev
        cost = np.where(masks[:, t], best, _INF)
    final = np.argmin(cost, axis=1)
    infeasible = ~np.isfinite(cost[batch_idx, final])
    trajectories = np.empty((n_batch, horizon), dtype=np.int64)
    trajectories[:, -1] = final
    for t in range(horizon - 1, 0, -1):
        trajectories[:, t - 1] = backpointers[batch_idx, t, trajectories[:, t]]
    return trajectories, infeasible


def most_likely_trajectory(
    chain: MarkovChain,
    horizon: int,
    *,
    allowed: np.ndarray | None = None,
    top_k: int | None = None,
) -> np.ndarray:
    """Most likely trajectory of length ``horizon`` (Viterbi DP).

    Solves Eq. (2)/(3) of the paper: the trajectory maximising
    ``pi(x_1) * prod_t P(x_t | x_{t-1})`` subject to the optional
    per-slot ``allowed`` mask.

    Sparse chains (and any chain when ``top_k`` successor pruning is
    requested) run the edge-iterating kernel, which matches the dense DP's
    paths exactly; dense chains keep the reference ``O(T L^2)`` DP.

    Returns an integer array of length ``horizon``.
    """
    mask = validate_allowed_mask(allowed, horizon, chain.n_states)
    if getattr(chain, "is_sparse", False) or top_k is not None:
        trajectories, infeasible = _sparse_viterbi(
            chain, horizon, mask[None], top_k
        )
        if infeasible[0]:
            raise InfeasibleTrellisError("no feasible trajectory under the mask")
        return trajectories[0]
    neg_log_pi = -chain.log_stationary
    neg_log_P = -chain.log_transition_matrix

    cost = np.where(mask[0], neg_log_pi, _INF)
    backpointers = np.zeros((horizon, chain.n_states), dtype=np.int64)
    for t in range(1, horizon):
        # candidate[x_prev, x_next] = cost[x_prev] + neg_log_P[x_prev, x_next]
        candidate = cost[:, None] + neg_log_P
        best_prev = np.argmin(candidate, axis=0)
        best_cost = candidate[best_prev, np.arange(chain.n_states)]
        best_cost = np.where(mask[t], best_cost, _INF)
        backpointers[t] = best_prev
        cost = best_cost
    final = int(np.argmin(cost))
    if not np.isfinite(cost[final]):
        raise InfeasibleTrellisError("no feasible trajectory under the mask")
    trajectory = np.empty(horizon, dtype=np.int64)
    trajectory[-1] = final
    for t in range(horizon - 1, 0, -1):
        trajectory[t - 1] = backpointers[t, trajectory[t]]
    return trajectory


def most_likely_trajectories(
    chain: MarkovChain,
    horizon: int,
    allowed_batch: np.ndarray,
    *,
    top_k: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Batched Viterbi: one masked most-likely trajectory per batch row.

    ``allowed_batch`` has shape ``(R, horizon, L)``; the DP of
    :func:`most_likely_trajectory` runs for all ``R`` masks simultaneously,
    with identical tie-breaking (first argmin).  Returns ``(trajectories,
    infeasible)`` where ``trajectories`` is ``(R, horizon)`` int64 and
    ``infeasible`` a boolean vector marking rows with no feasible path
    (those rows' trajectories are meaningless); batched callers handle
    infeasible rows instead of raising, so one bad mask cannot abort a
    whole Monte-Carlo batch.

    Sparse chains (and ``top_k`` pruning) use the edge-iterating kernel
    instead of materialising ``(R, L, L)`` candidate tensors.
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    masks = np.asarray(allowed_batch, dtype=bool)
    n_cells = chain.n_states
    if masks.ndim != 3 or masks.shape[1:] != (horizon, n_cells):
        raise ValueError(
            f"allowed_batch must have shape (R, {horizon}, {n_cells}), "
            f"got {masks.shape}"
        )
    n_batch = masks.shape[0]
    if n_batch == 0:
        raise ValueError("allowed_batch must contain at least one mask")
    if getattr(chain, "is_sparse", False) or top_k is not None:
        return _sparse_viterbi(chain, horizon, masks, top_k)
    neg_log_pi = -chain.log_stationary
    neg_log_P = -chain.log_transition_matrix

    cost = np.where(masks[:, 0], neg_log_pi[None, :], _INF)
    backpointers = np.zeros((n_batch, horizon, n_cells), dtype=np.int64)
    for t in range(1, horizon):
        candidate = cost[:, :, None] + neg_log_P[None, :, :]
        best_prev = np.argmin(candidate, axis=1)
        best_cost = np.take_along_axis(candidate, best_prev[:, None, :], axis=1)[
            :, 0, :
        ]
        best_cost = np.where(masks[:, t], best_cost, _INF)
        backpointers[:, t] = best_prev
        cost = best_cost
    final = np.argmin(cost, axis=1)
    infeasible = ~np.isfinite(cost[np.arange(n_batch), final])
    trajectories = np.empty((n_batch, horizon), dtype=np.int64)
    trajectories[:, -1] = final
    rows = np.arange(n_batch)
    for t in range(horizon - 1, 0, -1):
        trajectories[:, t - 1] = backpointers[rows, t, trajectories[:, t]]
    return trajectories, infeasible


def build_trellis_graph(
    chain: MarkovChain,
    horizon: int,
    *,
    allowed: np.ndarray | None = None,
) -> tuple[nx.DiGraph, str, str]:
    """Build the explicit Fig. 2 trellis as a networkx digraph.

    Vertices are ``(t, cell)`` for ``t in 1..horizon`` plus the virtual
    source ``"source"`` and sink ``"sink"``.  Edge weights follow the
    paper: ``-log pi`` out of the source, ``-log P`` between layers, and
    zero into the sink.  Forbidden (slot, cell) pairs are simply omitted.
    """
    mask = validate_allowed_mask(allowed, horizon, chain.n_states)
    graph = nx.DiGraph()
    source, sink = "source", "sink"
    graph.add_node(source)
    graph.add_node(sink)
    neg_log_pi = -chain.log_stationary
    neg_log_P = -chain.log_transition_matrix
    for cell in range(chain.n_states):
        if mask[0, cell]:
            graph.add_edge(source, (1, cell), weight=float(neg_log_pi[cell]))
    for t in range(2, horizon + 1):
        for prev in range(chain.n_states):
            if not mask[t - 2, prev]:
                continue
            for cell in range(chain.n_states):
                if not mask[t - 1, cell]:
                    continue
                weight = float(neg_log_P[prev, cell])
                if np.isfinite(weight):
                    graph.add_edge((t - 1, prev), (t, cell), weight=weight)
    for cell in range(chain.n_states):
        if mask[horizon - 1, cell]:
            graph.add_edge((horizon, cell), sink, weight=0.0)
    return graph, source, sink


def most_likely_trajectory_dijkstra(
    chain: MarkovChain,
    horizon: int,
    *,
    allowed: np.ndarray | None = None,
) -> np.ndarray:
    """Most likely trajectory via Dijkstra on the explicit trellis graph.

    Functionally identical to :func:`most_likely_trajectory`; kept as the
    literal implementation of the paper's algorithm and as a test oracle.
    """
    graph, source, sink = build_trellis_graph(chain, horizon, allowed=allowed)
    try:
        path = nx.dijkstra_path(graph, source, sink, weight="weight")
    except nx.NetworkXNoPath as exc:
        raise InfeasibleTrellisError("no feasible trajectory under the mask") from exc
    cells = [node[1] for node in path if isinstance(node, tuple)]
    return np.asarray(cells, dtype=np.int64)
