"""Constrained maximum likelihood (CML) auxiliary strategy (Section V-C1).

CML greedily maximises the chaff's likelihood subject to never co-locating
with the user: at each slot the chaff moves to its most likely next cell
*excluding* the user's current cell.  The paper introduces it as an
analytically tractable upper bound on the OO strategy's tracking accuracy
(Theorem V.4); it is also a legitimate online strategy in its own right
and is simulated in Figs. 5-6.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...mobility.markov import MarkovChain
from .base import ChaffStrategy, register_strategy

__all__ = ["ConstrainedMLStrategy", "ConstrainedMLController"]


@dataclass
class ConstrainedMLController:
    """Stateful per-episode controller for the CML strategy."""

    chain: MarkovChain
    previous_chaff: int | None = field(default=None, init=False)
    slot: int = field(default=0, init=False)

    def step(self, user_location: int, forbidden: frozenset[int] = frozenset()) -> int:
        """Return the chaff location for the current slot.

        The chaff never occupies the user's current cell; additional
        ``forbidden`` cells may be supplied by robust variants.
        """
        chain = self.chain
        if not 0 <= user_location < chain.n_states:
            raise ValueError("user location out of range")
        excluded = set(int(cell) for cell in forbidden)
        excluded.add(int(user_location))
        if len(excluded) >= chain.n_states:
            raise ValueError("all cells excluded; no feasible chaff location")
        if self.slot == 0:
            chaff = chain.restricted_argmax_stationary(excluded)
        else:
            assert self.previous_chaff is not None
            chaff = chain.restricted_argmax_row(self.previous_chaff, excluded)
        self.previous_chaff = chaff
        self.slot += 1
        return chaff

    def run(self, user_trajectory: np.ndarray) -> np.ndarray:
        """Run the controller over a full user trajectory."""
        user = np.asarray(user_trajectory, dtype=np.int64)
        chaff = np.empty(user.size, dtype=np.int64)
        for t, location in enumerate(user):
            chaff[t] = self.step(int(location))
        return chaff


@register_strategy
class ConstrainedMLStrategy(ChaffStrategy):
    """CML strategy: one constrained-greedy chaff (extra budget replicates it)."""

    name = "CML"
    is_online = True
    is_deterministic = True

    def generate(
        self,
        chain: MarkovChain,
        user_trajectory: np.ndarray,
        n_chaffs: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        user = self._validate_inputs(chain, user_trajectory, n_chaffs)
        # CML is deterministic given the user's trajectory; extra budget
        # replicates the single constrained-greedy chaff.
        chaff = ConstrainedMLController(chain).run(user)
        return np.tile(chaff, (n_chaffs, 1))
