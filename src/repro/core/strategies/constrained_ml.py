"""Constrained maximum likelihood (CML) auxiliary strategy (Section V-C1).

CML greedily maximises the chaff's likelihood subject to never co-locating
with the user: at each slot the chaff moves to its most likely next cell
*excluding* the user's current cell.  The paper introduces it as an
analytically tractable upper bound on the OO strategy's tracking accuracy
(Theorem V.4); it is also a legitimate online strategy in its own right
and is simulated in Figs. 5-6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ...mobility.markov import MarkovChain
from .base import ChaffStrategy, register_strategy

__all__ = ["ConstrainedMLStrategy", "ConstrainedMLController", "run_constrained_ml_batch"]


def run_constrained_ml_batch(
    chain: MarkovChain, user_trajectories: np.ndarray
) -> np.ndarray:
    """Run the CML controller for every row of an ``(R, T)`` user batch.

    Per slot the chaff moves to its most likely next cell unless that cell
    is the user's, in which case it takes the second most likely — a pure
    table lookup once the per-state top-two successors are precomputed.
    Matches :class:`ConstrainedMLController` run per row exactly.
    """
    users = np.asarray(user_trajectories, dtype=np.int64)
    if users.ndim != 2 or users.size == 0:
        raise ValueError("user trajectories must be a non-empty (R, T) array")
    if chain.n_states < 2:
        raise ValueError("the CML controller needs at least 2 states")
    n_runs, horizon = users.shape
    top1_row, top2_row = chain.top_two_successors()
    top1_pi, top2_pi = chain.top_two_stationary()

    chaffs = np.empty((n_runs, horizon), dtype=np.int64)
    user0 = users[:, 0]
    chaff = np.where(user0 == top1_pi, top2_pi, top1_pi)
    chaffs[:, 0] = chaff
    for t in range(1, horizon):
        user_t = users[:, t]
        ml = top1_row[chaff]
        chaff = np.where(ml == user_t, top2_row[chaff], ml)
        chaffs[:, t] = chaff
    return chaffs


@dataclass
class ConstrainedMLController:
    """Stateful per-episode controller for the CML strategy."""

    chain: MarkovChain
    previous_chaff: int | None = field(default=None, init=False)
    slot: int = field(default=0, init=False)

    def step(self, user_location: int, forbidden: frozenset[int] = frozenset()) -> int:
        """Return the chaff location for the current slot.

        The chaff never occupies the user's current cell; additional
        ``forbidden`` cells may be supplied by robust variants.
        """
        chain = self.chain
        if not 0 <= user_location < chain.n_states:
            raise ValueError("user location out of range")
        excluded = set(int(cell) for cell in forbidden)
        excluded.add(int(user_location))
        if len(excluded) >= chain.n_states:
            raise ValueError("all cells excluded; no feasible chaff location")
        if self.slot == 0:
            chaff = chain.restricted_argmax_stationary(excluded)
        else:
            assert self.previous_chaff is not None
            chaff = chain.restricted_argmax_row(self.previous_chaff, excluded)
        self.previous_chaff = chaff
        self.slot += 1
        return chaff

    def run(self, user_trajectory: np.ndarray) -> np.ndarray:
        """Run the controller over a full user trajectory."""
        user = np.asarray(user_trajectory, dtype=np.int64)
        chaff = np.empty(user.size, dtype=np.int64)
        for t, location in enumerate(user):
            chaff[t] = self.step(int(location))
        return chaff


@register_strategy
class ConstrainedMLStrategy(ChaffStrategy):
    """CML strategy: one constrained-greedy chaff (extra budget replicates it)."""

    name = "CML"
    is_online = True
    is_deterministic = True

    def generate(
        self,
        chain: MarkovChain,
        user_trajectory: np.ndarray,
        n_chaffs: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        user = self._validate_inputs(chain, user_trajectory, n_chaffs)
        # CML is deterministic given the user's trajectory; extra budget
        # replicates the single constrained-greedy chaff.
        chaff = ConstrainedMLController(chain).run(user)
        return np.tile(chaff, (n_chaffs, 1))

    def generate_batch(
        self,
        chain: MarkovChain,
        user_trajectories: np.ndarray,
        n_chaffs: int,
        rngs: Sequence[np.random.Generator],
    ) -> np.ndarray:
        """Vectorised batch: one constrained-greedy sweep over all runs."""
        users, rngs = self._validate_batch_inputs(
            chain, user_trajectories, n_chaffs, rngs
        )
        if chain.n_states < 2:
            return super().generate_batch(chain, users, n_chaffs, rngs)
        chaffs = run_constrained_ml_batch(chain, users)
        return np.repeat(chaffs[:, None, :], n_chaffs, axis=1)
