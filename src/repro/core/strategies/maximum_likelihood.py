"""Maximum-likelihood (ML) chaff strategy (Section IV-B).

The chaff follows the globally most likely trajectory of length ``T``
under the user's mobility model, computed as the shortest path on the
trellis of Fig. 2.  Since the ML detector is deterministic, a single such
chaff is sufficient: its likelihood is at least as high as any other
trajectory's, so the detector always picks it (up to ties).  Additional
chaff budget is spent on replicas of the same trajectory — the paper notes
that the deterministic strategies cannot benefit from more chaffs.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ...mobility.markov import MarkovChain
from ..trellis import most_likely_trajectory
from .base import ChaffStrategy, register_strategy

__all__ = ["MaximumLikelihoodStrategy"]


@register_strategy
class MaximumLikelihoodStrategy(ChaffStrategy):
    """Single chaff on the most likely trajectory (extra budget replicates it)."""

    name = "ML"
    is_online = True  # the trajectory can be precomputed before the user moves
    is_deterministic = True

    def generate(
        self,
        chain: MarkovChain,
        user_trajectory: np.ndarray,
        n_chaffs: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        user = self._validate_inputs(chain, user_trajectory, n_chaffs)
        horizon = user.size
        # The ML detector is deterministic, so at most one chaff has any
        # effect (Section IV-B); extra budget is spent on replicas, which
        # also reflects the paper's finding that the deterministic
        # strategies cannot benefit from more chaffs.
        chaff = self.most_likely(chain, horizon)
        return np.tile(chaff, (n_chaffs, 1))

    def generate_batch(
        self,
        chain: MarkovChain,
        user_trajectories: np.ndarray,
        n_chaffs: int,
        rngs: Sequence[np.random.Generator],
    ) -> np.ndarray:
        """Vectorised batch: one Viterbi solve shared by every run.

        The ML trajectory depends only on the model and the horizon (and
        the strategy consumes no randomness), so the looped engine's
        per-run recomputation collapses to a single solve broadcast over
        the ``(R, n_chaffs, T)`` output.
        """
        users, rngs = self._validate_batch_inputs(
            chain, user_trajectories, n_chaffs, rngs
        )
        chaff = self.most_likely(chain, users.shape[1])
        return np.broadcast_to(
            chaff, (users.shape[0], n_chaffs, users.shape[1])
        ).copy()

    def most_likely(self, chain: MarkovChain, horizon: int) -> np.ndarray:
        """The precomputable ML trajectory used by the first chaff."""
        return most_likely_trajectory(chain, horizon)

    def deterministic_map(
        self, chain: MarkovChain, user_trajectory: np.ndarray
    ) -> np.ndarray:
        """The ML chaff trajectory does not depend on the user's trajectory."""
        user = np.asarray(user_trajectory, dtype=np.int64)
        return self.most_likely(chain, user.size)
