"""Chaff control strategies (Section IV and VI-B of the paper)."""

from .base import (
    ChaffStrategy,
    StrategyRegistry,
    available_strategies,
    get_strategy,
    register_strategy,
)
from .impersonate import ImpersonatingStrategy
from .maximum_likelihood import MaximumLikelihoodStrategy
from .optimal_offline import (
    OptimalOfflineResult,
    OptimalOfflineStrategy,
    solve_optimal_offline,
)
from .myopic_online import MyopicOnlineController, MyopicOnlineStrategy
from .constrained_ml import ConstrainedMLController, ConstrainedMLStrategy
from .robust import (
    RobustMLStrategy,
    RobustMyopicOnlineStrategy,
    RobustOptimalOfflineStrategy,
    sample_exclusion_mask,
)
from .rollout import RolloutController, RolloutOnlineStrategy

__all__ = [
    "ChaffStrategy",
    "StrategyRegistry",
    "available_strategies",
    "get_strategy",
    "register_strategy",
    "ImpersonatingStrategy",
    "MaximumLikelihoodStrategy",
    "OptimalOfflineResult",
    "OptimalOfflineStrategy",
    "solve_optimal_offline",
    "MyopicOnlineController",
    "MyopicOnlineStrategy",
    "ConstrainedMLController",
    "ConstrainedMLStrategy",
    "RobustMLStrategy",
    "RobustMyopicOnlineStrategy",
    "RobustOptimalOfflineStrategy",
    "sample_exclusion_mask",
    "RolloutController",
    "RolloutOnlineStrategy",
]
