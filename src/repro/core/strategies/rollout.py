"""Rollout-based online chaff strategy (the paper's suggested MDP solver).

Section IV-D formulates the optimal online strategy as a finite-horizon
MDP and notes that "any efficient MDP solver (e.g., rollout algorithm) is
applicable here", leaving the comparison to future work.  This module
implements that rollout solver so the comparison can actually be run (see
the ``ablation-rollout`` experiment):

at every slot, for every candidate chaff cell, the controller simulates a
small number of lookahead rollouts — sampling the user's future from the
mobility model and steering the chaff with the myopic (MO) base policy —
and picks the cell with the smallest expected cumulative tracking cost
(immediate cost plus rollout cost-to-go).  With zero rollouts or zero
lookahead the strategy reduces exactly to MO.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...mobility.markov import MarkovChain
from .base import ChaffStrategy, register_strategy
from .myopic_online import MyopicOnlineController

__all__ = ["RolloutOnlineStrategy", "RolloutController"]


def _per_slot_cost(gamma: float, user_cell: int, chaff_cell: int) -> float:
    """The MDP's per-slot tracking cost C(gamma_t, x_1t, x_2t) (Section IV-D)."""
    if chaff_cell == user_cell:
        return 1.0
    if gamma > 0:
        return 1.0
    if gamma == 0:
        return 0.5
    return 0.0


@dataclass
class RolloutController:
    """Stateful rollout controller for a single episode.

    Parameters
    ----------
    chain:
        User mobility model.
    lookahead:
        Number of future slots simulated per rollout.
    n_rollouts:
        Number of Monte-Carlo rollouts per candidate cell.
    n_candidates:
        Number of candidate chaff cells examined per slot (the most likely
        successors of the chaff's previous cell); keeps the per-slot cost at
        ``O(n_candidates * n_rollouts * lookahead)``.
    rng:
        Randomness source for the rollouts.
    """

    chain: MarkovChain
    lookahead: int = 5
    n_rollouts: int = 4
    n_candidates: int = 3
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(0))
    gamma: float = field(default=0.0, init=False)
    previous_chaff: int | None = field(default=None, init=False)
    previous_user: int | None = field(default=None, init=False)
    slot: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.lookahead < 0:
            raise ValueError("lookahead must be non-negative")
        if self.n_rollouts < 1:
            raise ValueError("n_rollouts must be positive")
        if self.n_candidates < 1:
            raise ValueError("n_candidates must be positive")

    # ------------------------------------------------------------------
    def step(self, user_location: int) -> int:
        """Advance one slot and return the chaff location."""
        chain = self.chain
        if not 0 <= user_location < chain.n_states:
            raise ValueError("user location out of range")
        candidates = self._candidate_cells()
        best_cell = candidates[0]
        best_value = np.inf
        for candidate in candidates:
            value = self._evaluate_candidate(int(candidate), int(user_location))
            if value < best_value - 1e-12:
                best_value = value
                best_cell = int(candidate)
        step_gap = self._step_gap(int(user_location), best_cell)
        self.gamma += step_gap
        self.previous_chaff = best_cell
        self.previous_user = int(user_location)
        self.slot += 1
        return best_cell

    def run(self, user_trajectory: np.ndarray) -> np.ndarray:
        """Run the controller over a full user trajectory."""
        user = np.asarray(user_trajectory, dtype=np.int64)
        chaff = np.empty(user.size, dtype=np.int64)
        for t, location in enumerate(user):
            chaff[t] = self.step(int(location))
        return chaff

    # ------------------------------------------------------------------
    def _candidate_cells(self) -> np.ndarray:
        """The most promising chaff cells for the current slot."""
        chain = self.chain
        if self.slot == 0:
            weights = chain.stationary
        else:
            assert self.previous_chaff is not None
            weights = chain.transition_row(self.previous_chaff)
        order = np.argsort(-weights)
        return order[: min(self.n_candidates, chain.n_states)]

    def _step_gap(self, user_cell: int, chaff_cell: int) -> float:
        """Increment of gamma for moving the chaff to ``chaff_cell``."""
        chain = self.chain
        if self.slot == 0:
            return float(
                chain.log_stationary[user_cell] - chain.log_stationary[chaff_cell]
            )
        assert self.previous_chaff is not None and self.previous_user is not None
        return float(
            chain.log_transition_entries(self.previous_user, user_cell)
            - chain.log_transition_entries(self.previous_chaff, chaff_cell)
        )

    def _evaluate_candidate(self, chaff_cell: int, user_cell: int) -> float:
        """Immediate cost plus average rollout cost-to-go for a candidate."""
        gamma_after = self.gamma + self._step_gap(user_cell, chaff_cell)
        immediate = _per_slot_cost(gamma_after, user_cell, chaff_cell)
        if self.lookahead == 0:
            return immediate
        # One base controller serves every rollout of this candidate; each
        # rollout fully resets its state, so reuse is free of carry-over.
        base = MyopicOnlineController(self.chain)
        total = 0.0
        for _ in range(self.n_rollouts):
            total += self._rollout(base, gamma_after, user_cell, chaff_cell)
        return immediate + total / self.n_rollouts

    def _rollout(
        self,
        base: MyopicOnlineController,
        gamma: float,
        user_cell: int,
        chaff_cell: int,
    ) -> float:
        """Simulate the future under the MO base policy and sum the costs."""
        chain = self.chain
        # Seed the base controller with the current state.
        base.gamma = gamma
        base.previous_chaff = chaff_cell
        base.previous_user = user_cell
        base.slot = max(self.slot, 1)
        cost = 0.0
        current_user = user_cell
        for _ in range(self.lookahead):
            next_user = chain.sample_next_state(current_user, self.rng)
            next_chaff = base.step(next_user)
            cost += _per_slot_cost(base.gamma, next_user, next_chaff)
            current_user = next_user
        return cost


@register_strategy
class RolloutOnlineStrategy(ChaffStrategy):
    """Online rollout strategy (extra budget replicates the single chaff)."""

    name = "ROLLOUT"
    is_online = True
    is_deterministic = False  # rollouts are randomised

    def __init__(
        self, *, lookahead: int = 5, n_rollouts: int = 4, n_candidates: int = 3
    ) -> None:
        self.lookahead = lookahead
        self.n_rollouts = n_rollouts
        self.n_candidates = n_candidates

    def generate(
        self,
        chain: MarkovChain,
        user_trajectory: np.ndarray,
        n_chaffs: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        user = self._validate_inputs(chain, user_trajectory, n_chaffs)
        controller = RolloutController(
            chain,
            lookahead=self.lookahead,
            n_rollouts=self.n_rollouts,
            n_candidates=self.n_candidates,
            rng=rng,
        )
        chaff = controller.run(user)
        return np.tile(chaff, (n_chaffs, 1))
