"""Impersonating (IM) chaff strategy (Section IV-A).

Each chaff follows an independent trajectory sampled from the *same*
Markov chain as the user, so all ``N`` observed trajectories are
statistically identical and any detector — including the ML detector —
can only make a random guess.  IM is the only strategy in the paper that
is fully robust to an eavesdropper who knows the strategy, but its
tracking accuracy is bounded away from zero (Eq. 11).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ...mobility.markov import MarkovChain
from .base import ChaffStrategy, register_strategy

__all__ = ["ImpersonatingStrategy"]


@register_strategy
class ImpersonatingStrategy(ChaffStrategy):
    """Chaffs mimic the user by sampling his mobility model independently."""

    name = "IM"
    is_online = True
    is_deterministic = False

    def generate(
        self,
        chain: MarkovChain,
        user_trajectory: np.ndarray,
        n_chaffs: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        user = self._validate_inputs(chain, user_trajectory, n_chaffs)
        horizon = user.size
        return chain.sample_trajectories(n_chaffs, horizon, rng)

    def generate_batch(
        self,
        chain: MarkovChain,
        user_trajectories: np.ndarray,
        n_chaffs: int,
        rngs: Sequence[np.random.Generator],
    ) -> np.ndarray:
        """Vectorised batch: all ``R * n_chaffs`` chaffs evolve together.

        Randomness is drawn per run in the scalar order (initial state,
        then the uniform block, chaff by chaff), then the combined
        ``(R * n_chaffs, T)`` ensemble takes each time step in one numpy
        operation.
        """
        users, rngs = self._validate_batch_inputs(
            chain, user_trajectories, n_chaffs, rngs
        )
        n_runs, horizon = users.shape
        initial = np.empty(n_runs * n_chaffs, dtype=np.int64)
        uniforms = np.empty((n_runs * n_chaffs, max(horizon - 1, 0)), dtype=float)
        for run, rng in enumerate(rngs):
            for chaff in range(n_chaffs):
                row = run * n_chaffs + chaff
                initial[row], uniforms[row] = chain.sample_trajectory_randomness(
                    horizon, rng
                )
        flat = chain.evolve_from_uniforms(initial, uniforms)
        return flat.reshape(n_runs, n_chaffs, horizon)
