"""Impersonating (IM) chaff strategy (Section IV-A).

Each chaff follows an independent trajectory sampled from the *same*
Markov chain as the user, so all ``N`` observed trajectories are
statistically identical and any detector — including the ML detector —
can only make a random guess.  IM is the only strategy in the paper that
is fully robust to an eavesdropper who knows the strategy, but its
tracking accuracy is bounded away from zero (Eq. 11).
"""

from __future__ import annotations

import numpy as np

from ...mobility.markov import MarkovChain
from .base import ChaffStrategy, register_strategy

__all__ = ["ImpersonatingStrategy"]


@register_strategy
class ImpersonatingStrategy(ChaffStrategy):
    """Chaffs mimic the user by sampling his mobility model independently."""

    name = "IM"
    is_online = True
    is_deterministic = False

    def generate(
        self,
        chain: MarkovChain,
        user_trajectory: np.ndarray,
        n_chaffs: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        user = self._validate_inputs(chain, user_trajectory, n_chaffs)
        horizon = user.size
        return chain.sample_trajectories(n_chaffs, horizon, rng)
