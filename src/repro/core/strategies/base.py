"""Chaff control strategy interface and registry.

A *chaff control strategy* decides the trajectories of the ``N - 1`` chaff
services given the user's mobility model and (depending on the strategy)
the user's realised trajectory.  Strategies differ in what they may look
at:

* *offline* strategies (OO, ROO) need the user's entire trajectory,
  including the future;
* *online* strategies (IM, CML, MO, RMO) only use the user's past and
  current locations;
* the ML / RML strategies use neither — the chaff trajectory depends only
  on the mobility model and can be precomputed.

The simulation harness always evaluates strategies in batch, so the common
entry point :meth:`ChaffStrategy.generate` receives the full user
trajectory; online strategies are implemented so that the chaff location
at slot ``t`` is a function of the user trajectory up to ``t`` only, which
is asserted by dedicated causality tests.
"""

from __future__ import annotations

import abc
from typing import Dict, Iterable, Sequence, Type

import numpy as np

from ...mobility.markov import MarkovChain

__all__ = [
    "ChaffStrategy",
    "StrategyRegistry",
    "register_strategy",
    "get_strategy",
    "available_strategies",
    "as_trajectory_array",
]


def as_trajectory_array(trajectory: Iterable[int] | np.ndarray) -> np.ndarray:
    """Coerce a trajectory into a validated 1-D int64 array."""
    traj = np.asarray(trajectory, dtype=np.int64)
    if traj.ndim != 1 or traj.size == 0:
        raise ValueError("trajectory must be a non-empty 1-D sequence of cells")
    return traj


class ChaffStrategy(abc.ABC):
    """Base class for chaff control strategies.

    Subclasses set the class attributes:

    ``name``
        Short identifier used in experiment configs and figures
        (e.g. ``"IM"``, ``"OO"``).
    ``is_online``
        Whether the strategy only uses causally available information.
    ``is_deterministic``
        Whether the chaff trajectory is a deterministic function of the
        user's trajectory (given the mobility model).  Deterministic
        strategies are the ones vulnerable to the advanced eavesdropper
        (Section VI-A).
    """

    name: str = "abstract"
    is_online: bool = False
    is_deterministic: bool = False

    @abc.abstractmethod
    def generate(
        self,
        chain: MarkovChain,
        user_trajectory: np.ndarray,
        n_chaffs: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Generate chaff trajectories.

        Parameters
        ----------
        chain:
            The user's mobility model (known to the user and, per the
            paper's threat model, to the eavesdropper).
        user_trajectory:
            The user's realised cell trajectory of length ``T``.
        n_chaffs:
            Number of chaff services to control (``N - 1 >= 1``).
        rng:
            Randomness source (used by randomised strategies; deterministic
            strategies ignore it).

        Returns
        -------
        numpy.ndarray
            Integer array of shape ``(n_chaffs, T)``.
        """

    def generate_batch(
        self,
        chain: MarkovChain,
        user_trajectories: np.ndarray,
        n_chaffs: int,
        rngs: Sequence[np.random.Generator],
    ) -> np.ndarray:
        """Generate chaffs for a whole ``(R, T)`` batch of user trajectories.

        Run ``r`` consumes only ``rngs[r]``, and in exactly the order a
        scalar :meth:`generate` call would, so the batched Monte-Carlo
        engine reproduces the looped engine bit for bit.  This default
        loops over runs; the ML/RML, IM, MO and CML families override it
        with true vectorised implementations.

        Returns
        -------
        numpy.ndarray
            Integer array of shape ``(R, n_chaffs, T)``.
        """
        users, rngs = self._validate_batch_inputs(
            chain, user_trajectories, n_chaffs, rngs
        )
        return np.stack(
            [
                self.generate(chain, users[run], n_chaffs, rngs[run])
                for run in range(users.shape[0])
            ],
            axis=0,
        )

    # ------------------------------------------------------------------
    def deterministic_map(
        self, chain: MarkovChain, user_trajectory: np.ndarray
    ) -> np.ndarray | None:
        """The map ``Gamma(x_1)`` used by the advanced eavesdropper.

        For deterministic single-chaff strategies this returns the chaff
        trajectory the strategy would produce for a given "user"
        trajectory; the advanced eavesdropper applies it to every observed
        trajectory to unmask chaffs (Section VI-A3).  Randomised
        strategies return ``None``.
        """
        if not self.is_deterministic:
            return None
        user = as_trajectory_array(user_trajectory)
        chaffs = self.generate(chain, user, 1, np.random.default_rng(0))
        return chaffs[0]

    # ------------------------------------------------------------------
    @staticmethod
    def _validate_inputs(
        chain: MarkovChain, user_trajectory: np.ndarray, n_chaffs: int
    ) -> np.ndarray:
        user = as_trajectory_array(user_trajectory)
        if user.min() < 0 or user.max() >= chain.n_states:
            raise ValueError("user trajectory contains out-of-range cells")
        if n_chaffs < 1:
            raise ValueError("n_chaffs must be at least 1")
        return user

    @staticmethod
    def _validate_batch_inputs(
        chain: MarkovChain,
        user_trajectories: np.ndarray,
        n_chaffs: int,
        rngs: Sequence[np.random.Generator],
    ) -> tuple[np.ndarray, list[np.random.Generator]]:
        users = np.asarray(user_trajectories, dtype=np.int64)
        if users.ndim != 2 or users.size == 0:
            raise ValueError("user trajectories must be a non-empty (R, T) array")
        if users.min() < 0 or users.max() >= chain.n_states:
            raise ValueError("user trajectories contain out-of-range cells")
        if n_chaffs < 1:
            raise ValueError("n_chaffs must be at least 1")
        rngs = list(rngs)
        if len(rngs) != users.shape[0]:
            raise ValueError("need exactly one generator per run")
        return users, rngs

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class StrategyRegistry:
    """A simple name -> strategy-class registry used by configs and the CLI."""

    def __init__(self) -> None:
        self._strategies: Dict[str, Type[ChaffStrategy]] = {}

    def register(self, cls: Type[ChaffStrategy]) -> Type[ChaffStrategy]:
        """Register a strategy class under its ``name`` attribute."""
        if not issubclass(cls, ChaffStrategy):
            raise TypeError("can only register ChaffStrategy subclasses")
        key = cls.name.upper()
        if key in self._strategies and self._strategies[key] is not cls:
            raise ValueError(f"strategy name {cls.name!r} already registered")
        self._strategies[key] = cls
        return cls

    def create(self, name: str, **kwargs) -> ChaffStrategy:
        """Instantiate a registered strategy by name (case-insensitive)."""
        key = name.upper()
        if key not in self._strategies:
            raise KeyError(
                f"unknown strategy {name!r}; available: {sorted(self._strategies)}"
            )
        return self._strategies[key](**kwargs)

    def names(self) -> list[str]:
        """Registered strategy names, sorted."""
        return sorted(self._strategies)


#: Global registry populated by the strategy modules at import time.
_REGISTRY = StrategyRegistry()


def register_strategy(cls: Type[ChaffStrategy]) -> Type[ChaffStrategy]:
    """Class decorator adding a strategy to the global registry."""
    return _REGISTRY.register(cls)


def get_strategy(name: str, **kwargs) -> ChaffStrategy:
    """Instantiate a strategy from the global registry by name."""
    return _REGISTRY.create(name, **kwargs)


def available_strategies() -> list[str]:
    """Names of all registered strategies."""
    return _REGISTRY.names()
