"""Randomised robust chaff strategies (Section VI-B).

The deterministic strategies (ML, OO, MO) are vulnerable to an *advanced*
eavesdropper who knows the strategy: he can recompute the chaff trajectory
and discard it.  The robust variants break that attack by generating one
chaff per unit of budget and randomly perturbing each chaff's trajectory
so it cannot be reproduced exactly:

* **RML** — for each chaff ``u``, pick one random (cell, slot) pair from
  every previously generated trajectory (user and earlier chaffs) and
  compute the most likely trajectory that *avoids* those pairs.
* **ROO** — same exclusion sets, but the trajectory is computed with the
  OO dynamic program restricted to the remaining cells.
* **RMO** — for each chaff, pick one random slot per earlier trajectory at
  which it must avoid that trajectory's cell, then run the myopic online
  controller with those per-slot exclusions.

All three remain close to their deterministic counterparts under the basic
ML detector while defeating the strategy-aware detector (Figs. 7 and 10).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ...mobility.markov import MarkovChain
from ..trellis import (
    InfeasibleTrellisError,
    most_likely_trajectories,
    most_likely_trajectory,
)
from .base import ChaffStrategy, register_strategy
from .constrained_ml import ConstrainedMLController
from .myopic_online import MyopicOnlineController
from .optimal_offline import solve_optimal_offline

__all__ = [
    "RobustMLStrategy",
    "RobustOptimalOfflineStrategy",
    "RobustMyopicOnlineStrategy",
    "sample_exclusion_mask",
]


def sample_exclusion_mask(
    prior_trajectories: np.ndarray,
    n_cells: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample the RML/ROO exclusion set as a boolean ``allowed`` mask.

    For every previously generated trajectory, one slot is chosen uniformly
    at random and the trajectory's cell at that slot becomes forbidden for
    the chaff being generated.  Returns a ``(T, n_cells)`` boolean mask with
    ``False`` marking forbidden (slot, cell) pairs.
    """
    prior = np.asarray(prior_trajectories, dtype=np.int64)
    if prior.ndim != 2 or prior.size == 0:
        raise ValueError("prior_trajectories must be a non-empty 2-D array")
    horizon = prior.shape[1]
    allowed = np.ones((horizon, n_cells), dtype=bool)
    for row in prior:
        slot = int(rng.integers(0, horizon))
        allowed[slot, int(row[slot])] = False
    # Never forbid every cell in a slot (cannot happen unless the number of
    # prior trajectories reaches the cell count, but guard regardless).
    for slot in range(horizon):
        if not allowed[slot].any():
            allowed[slot, int(prior[0, slot])] = True
    return allowed


def _sample_rmo_exclusions(
    n_prior: int, horizon: int, rng: np.random.Generator
) -> dict[int, list[int]]:
    """Map slot -> list of prior-trajectory indices to avoid at that slot."""
    exclusions: dict[int, list[int]] = {}
    for prior_index in range(n_prior):
        slot = int(rng.integers(0, horizon))
        exclusions.setdefault(slot, []).append(prior_index)
    return exclusions


@register_strategy
class RobustMLStrategy(ChaffStrategy):
    """RML: per-chaff randomly perturbed maximum-likelihood trajectories."""

    name = "RML"
    is_online = True  # trajectories depend only on the model + randomness
    is_deterministic = False

    def generate(
        self,
        chain: MarkovChain,
        user_trajectory: np.ndarray,
        n_chaffs: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        user = self._validate_inputs(chain, user_trajectory, n_chaffs)
        horizon = user.size
        trajectories = [user]
        chaffs = np.empty((n_chaffs, horizon), dtype=np.int64)
        for index in range(n_chaffs):
            allowed = sample_exclusion_mask(
                np.stack(trajectories), chain.n_states, rng
            )
            try:
                chaff = most_likely_trajectory(chain, horizon, allowed=allowed)
            except InfeasibleTrellisError:
                chaff = chain.sample_trajectory(horizon, rng)
            chaffs[index] = chaff
            trajectories.append(chaff)
        return chaffs

    def generate_batch(
        self,
        chain: MarkovChain,
        user_trajectories: np.ndarray,
        n_chaffs: int,
        rngs: Sequence[np.random.Generator],
    ) -> np.ndarray:
        """Vectorised batch: one masked Viterbi solve per chaff index.

        Chaff ``u`` depends on the previous chaffs of its own run, so the
        chaff axis stays sequential; within it, the exclusion masks of all
        runs are sampled per run (preserving each run's random stream) and
        the ``R`` masked shortest-path problems are solved as a single
        batched DP.  Runs whose mask is infeasible fall back to sampling
        the mobility model from their own generator, exactly like the
        scalar path.
        """
        users, rngs = self._validate_batch_inputs(
            chain, user_trajectories, n_chaffs, rngs
        )
        n_runs, horizon = users.shape
        priors: list[list[np.ndarray]] = [[users[run]] for run in range(n_runs)]
        chaffs = np.empty((n_runs, n_chaffs, horizon), dtype=np.int64)
        masks = np.empty((n_runs, horizon, chain.n_states), dtype=bool)
        for index in range(n_chaffs):
            for run in range(n_runs):
                masks[run] = sample_exclusion_mask(
                    np.stack(priors[run]), chain.n_states, rngs[run]
                )
            batch, infeasible = most_likely_trajectories(chain, horizon, masks)
            for run in np.flatnonzero(infeasible):
                batch[run] = chain.sample_trajectory(horizon, rngs[run])
            chaffs[:, index] = batch
            for run in range(n_runs):
                priors[run].append(batch[run])
        return chaffs


@register_strategy
class RobustOptimalOfflineStrategy(ChaffStrategy):
    """ROO: per-chaff randomly perturbed optimal offline trajectories."""

    name = "ROO"
    is_online = False
    is_deterministic = False

    def generate(
        self,
        chain: MarkovChain,
        user_trajectory: np.ndarray,
        n_chaffs: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        user = self._validate_inputs(chain, user_trajectory, n_chaffs)
        horizon = user.size
        trajectories = [user]
        chaffs = np.empty((n_chaffs, horizon), dtype=np.int64)
        for index in range(n_chaffs):
            allowed = sample_exclusion_mask(
                np.stack(trajectories), chain.n_states, rng
            )
            try:
                chaff = solve_optimal_offline(chain, user, allowed=allowed).trajectory
            except InfeasibleTrellisError:
                chaff = ConstrainedMLController(chain).run(user)
            chaffs[index] = chaff
            trajectories.append(chaff)
        return chaffs


@register_strategy
class RobustMyopicOnlineStrategy(ChaffStrategy):
    """RMO: per-chaff myopic online controllers with random per-slot exclusions."""

    name = "RMO"
    is_online = True
    is_deterministic = False

    def generate(
        self,
        chain: MarkovChain,
        user_trajectory: np.ndarray,
        n_chaffs: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        user = self._validate_inputs(chain, user_trajectory, n_chaffs)
        horizon = user.size
        chaffs = np.full((n_chaffs, horizon), -1, dtype=np.int64)
        controllers = [MyopicOnlineController(chain) for _ in range(n_chaffs)]
        # exclusions[c] maps slot -> prior trajectory indices (0 = user,
        # 1 = first chaff, ...) that chaff c must avoid at that slot.
        exclusions = [
            _sample_rmo_exclusions(n_prior=index + 1, horizon=horizon, rng=rng)
            for index in range(n_chaffs)
        ]
        for t in range(horizon):
            user_cell = int(user[t])
            for index in range(n_chaffs):
                forbidden: set[int] = set()
                for prior_index in exclusions[index].get(t, []):
                    if prior_index == 0:
                        forbidden.add(user_cell)
                    else:
                        forbidden.add(int(chaffs[prior_index - 1, t]))
                forbidden.discard(-1)
                # Keep the problem feasible even in tiny state spaces.
                while len(forbidden) >= chain.n_states - 1 and forbidden:
                    forbidden.pop()
                chaffs[index, t] = controllers[index].step(
                    user_cell, frozenset(forbidden)
                )
        return chaffs
