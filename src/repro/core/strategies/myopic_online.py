"""Myopic online (MO) chaff strategy — Algorithm 2 of the paper.

MO is the computable surrogate of the optimal online strategy (the
finite-horizon MDP of Section IV-D): at every slot it minimises the
*immediate* tracking probability while keeping the chaff's cumulative
log-likelihood at least as high as the user's whenever possible.

Per slot ``t``, given the user's current location ``x_{1,t}``:

1. if the chaff's ML next location does not coincide with the user, move
   there;
2. otherwise, if the second-ML location still keeps the chaff's cumulative
   likelihood at least the user's, move there (avoiding co-location);
3. otherwise the user is tracked this slot no matter what, so move to the
   ML location to maximise future likelihood headroom.

The strategy is *online*: the decision at slot ``t`` depends only on the
user trajectory up to slot ``t``.  The state carried across slots is
``gamma_t`` — the log-likelihood gap between user and chaff.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ...mobility.markov import MarkovChain
from .base import ChaffStrategy, register_strategy

__all__ = ["MyopicOnlineStrategy", "MyopicOnlineController", "run_myopic_batch"]


def run_myopic_batch(chain: MarkovChain, user_trajectories: np.ndarray) -> np.ndarray:
    """Run Algorithm 2 for every row of an ``(R, T)`` user batch at once.

    The controller state (the log-likelihood gap ``gamma``, the previous
    chaff and user cells) becomes a vector over runs; every slot is a
    handful of numpy gathers and ``where`` selections instead of ``R``
    Python calls.  Produces exactly the trajectories of
    :class:`MyopicOnlineController` run per row, including tie-breaking
    and the floating-point order of the ``gamma`` recursion.
    """
    users = np.asarray(user_trajectories, dtype=np.int64)
    if users.ndim != 2 or users.size == 0:
        raise ValueError("user trajectories must be a non-empty (R, T) array")
    if chain.n_states < 2:
        raise ValueError("the myopic controller needs at least 2 states")
    n_runs, horizon = users.shape
    log_pi = chain.log_stationary
    top1_row, top2_row = chain.top_two_successors()
    top1_pi, top2_pi = chain.top_two_stationary()
    pi = chain.stationary

    chaffs = np.empty((n_runs, horizon), dtype=np.int64)
    user0 = users[:, 0]
    # Slot 0: best stationary cell unless it collides with the user and the
    # second-best cell is at least as likely (Algorithm 2's opening move).
    use_second = (user0 == top1_pi) & (pi[top2_pi] >= pi[user0])
    chaff = np.where(use_second, top2_pi, top1_pi)
    gamma = log_pi[user0] - log_pi[chaff]
    chaffs[:, 0] = chaff
    previous_chaff = chaff
    previous_user = user0
    for t in range(1, horizon):
        user_t = users[:, t]
        ml = top1_row[previous_chaff]
        second = top2_row[previous_chaff]
        user_step = chain.log_transition_entries(previous_user, user_t)
        second_step = chain.log_transition_entries(previous_chaff, second)
        use_second = (ml == user_t) & (gamma + user_step - second_step <= 0.0)
        chaff = np.where(use_second, second, ml)
        chaff_step = chain.log_transition_entries(previous_chaff, chaff)
        gamma = gamma + user_step - chaff_step
        chaffs[:, t] = chaff
        previous_chaff = chaff
        previous_user = user_t
    return chaffs


@dataclass
class MyopicOnlineController:
    """Stateful per-episode controller implementing Algorithm 2.

    The controller is fed the user's location one slot at a time via
    :meth:`step` and returns the chaff's location for that slot.  A set of
    additionally forbidden cells may be supplied per slot, which is how the
    robust RMO variant injects its random exclusions.
    """

    chain: MarkovChain
    gamma: float = field(default=0.0, init=False)
    previous_chaff: int | None = field(default=None, init=False)
    previous_user: int | None = field(default=None, init=False)
    slot: int = field(default=0, init=False)

    def step(self, user_location: int, forbidden: frozenset[int] = frozenset()) -> int:
        """Advance one slot and return the chaff's location.

        Parameters
        ----------
        user_location:
            The user's (observed) cell at the current slot.
        forbidden:
            Extra cells the chaff must avoid this slot (RMO exclusions).
            The user's cell is handled separately per Algorithm 2; cells in
            ``forbidden`` are excluded from both the ML and second-ML
            candidate computations.
        """
        chain = self.chain
        if not 0 <= user_location < chain.n_states:
            raise ValueError("user location out of range")
        excluded = set(int(cell) for cell in forbidden)
        if len(excluded) >= chain.n_states - 1:
            raise ValueError("too many forbidden cells; no room for the chaff")

        if self.slot == 0:
            ml_cell = chain.restricted_argmax_stationary(excluded)
            if ml_cell != user_location:
                chaff = ml_cell
            else:
                second = chain.restricted_argmax_stationary(
                    excluded | {user_location}
                )
                if chain.stationary[second] >= chain.stationary[user_location]:
                    chaff = second
                else:
                    chaff = ml_cell
            self.gamma = float(
                chain.log_stationary[user_location] - chain.log_stationary[chaff]
            )
        else:
            assert self.previous_chaff is not None and self.previous_user is not None
            ml_cell = chain.restricted_argmax_row(self.previous_chaff, excluded)
            user_step = float(
                chain.log_transition_entries(self.previous_user, user_location)
            )
            if ml_cell != user_location:
                chaff = ml_cell
            else:
                second = chain.restricted_argmax_row(
                    self.previous_chaff, excluded | {user_location}
                )
                second_step = float(
                    chain.log_transition_entries(self.previous_chaff, second)
                )
                if self.gamma + user_step - second_step <= 0.0:
                    chaff = second
                else:
                    chaff = ml_cell
            chaff_step = float(
                chain.log_transition_entries(self.previous_chaff, chaff)
            )
            self.gamma = self.gamma + user_step - chaff_step

        self.previous_chaff = chaff
        self.previous_user = int(user_location)
        self.slot += 1
        return chaff

    def run(self, user_trajectory: np.ndarray) -> np.ndarray:
        """Run the controller over a full user trajectory."""
        user = np.asarray(user_trajectory, dtype=np.int64)
        chaff = np.empty(user.size, dtype=np.int64)
        for t, location in enumerate(user):
            chaff[t] = self.step(int(location))
        return chaff


@register_strategy
class MyopicOnlineStrategy(ChaffStrategy):
    """Myopic online strategy: one myopic chaff (extra budget replicates it)."""

    name = "MO"
    is_online = True
    is_deterministic = True

    def generate(
        self,
        chain: MarkovChain,
        user_trajectory: np.ndarray,
        n_chaffs: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        user = self._validate_inputs(chain, user_trajectory, n_chaffs)
        # A single myopic chaff is all the ML detector can be misled by;
        # extra budget replicates it (deterministic strategies cannot
        # benefit from more chaffs, Section VII-A2).
        chaff = MyopicOnlineController(chain).run(user)
        return np.tile(chaff, (n_chaffs, 1))

    def generate_batch(
        self,
        chain: MarkovChain,
        user_trajectories: np.ndarray,
        n_chaffs: int,
        rngs: Sequence[np.random.Generator],
    ) -> np.ndarray:
        """Vectorised batch: one myopic controller sweep over all runs.

        The strategy consumes no randomness, so only the controller
        recursion needs batching; extra budget replicates the single chaff
        as in the scalar path.
        """
        users, rngs = self._validate_batch_inputs(
            chain, user_trajectories, n_chaffs, rngs
        )
        if chain.n_states < 2:
            return super().generate_batch(chain, users, n_chaffs, rngs)
        chaffs = run_myopic_batch(chain, users)
        return np.repeat(chaffs[:, None, :], n_chaffs, axis=1)
