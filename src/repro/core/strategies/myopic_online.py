"""Myopic online (MO) chaff strategy — Algorithm 2 of the paper.

MO is the computable surrogate of the optimal online strategy (the
finite-horizon MDP of Section IV-D): at every slot it minimises the
*immediate* tracking probability while keeping the chaff's cumulative
log-likelihood at least as high as the user's whenever possible.

Per slot ``t``, given the user's current location ``x_{1,t}``:

1. if the chaff's ML next location does not coincide with the user, move
   there;
2. otherwise, if the second-ML location still keeps the chaff's cumulative
   likelihood at least the user's, move there (avoiding co-location);
3. otherwise the user is tracked this slot no matter what, so move to the
   ML location to maximise future likelihood headroom.

The strategy is *online*: the decision at slot ``t`` depends only on the
user trajectory up to slot ``t``.  The state carried across slots is
``gamma_t`` — the log-likelihood gap between user and chaff.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...mobility.markov import MarkovChain
from .base import ChaffStrategy, register_strategy

__all__ = ["MyopicOnlineStrategy", "MyopicOnlineController"]


@dataclass
class MyopicOnlineController:
    """Stateful per-episode controller implementing Algorithm 2.

    The controller is fed the user's location one slot at a time via
    :meth:`step` and returns the chaff's location for that slot.  A set of
    additionally forbidden cells may be supplied per slot, which is how the
    robust RMO variant injects its random exclusions.
    """

    chain: MarkovChain
    gamma: float = field(default=0.0, init=False)
    previous_chaff: int | None = field(default=None, init=False)
    previous_user: int | None = field(default=None, init=False)
    slot: int = field(default=0, init=False)

    def step(self, user_location: int, forbidden: frozenset[int] = frozenset()) -> int:
        """Advance one slot and return the chaff's location.

        Parameters
        ----------
        user_location:
            The user's (observed) cell at the current slot.
        forbidden:
            Extra cells the chaff must avoid this slot (RMO exclusions).
            The user's cell is handled separately per Algorithm 2; cells in
            ``forbidden`` are excluded from both the ML and second-ML
            candidate computations.
        """
        chain = self.chain
        if not 0 <= user_location < chain.n_states:
            raise ValueError("user location out of range")
        excluded = set(int(cell) for cell in forbidden)
        if len(excluded) >= chain.n_states - 1:
            raise ValueError("too many forbidden cells; no room for the chaff")

        if self.slot == 0:
            ml_cell = chain.restricted_argmax_stationary(excluded)
            if ml_cell != user_location:
                chaff = ml_cell
            else:
                second = chain.restricted_argmax_stationary(
                    excluded | {user_location}
                )
                if chain.stationary[second] >= chain.stationary[user_location]:
                    chaff = second
                else:
                    chaff = ml_cell
            self.gamma = float(
                chain.log_stationary[user_location] - chain.log_stationary[chaff]
            )
        else:
            assert self.previous_chaff is not None and self.previous_user is not None
            ml_cell = chain.restricted_argmax_row(self.previous_chaff, excluded)
            log_P = chain.log_transition_matrix
            user_step = float(log_P[self.previous_user, user_location])
            if ml_cell != user_location:
                chaff = ml_cell
            else:
                second = chain.restricted_argmax_row(
                    self.previous_chaff, excluded | {user_location}
                )
                second_step = float(log_P[self.previous_chaff, second])
                if self.gamma + user_step - second_step <= 0.0:
                    chaff = second
                else:
                    chaff = ml_cell
            chaff_step = float(log_P[self.previous_chaff, chaff])
            self.gamma = self.gamma + user_step - chaff_step

        self.previous_chaff = chaff
        self.previous_user = int(user_location)
        self.slot += 1
        return chaff

    def run(self, user_trajectory: np.ndarray) -> np.ndarray:
        """Run the controller over a full user trajectory."""
        user = np.asarray(user_trajectory, dtype=np.int64)
        chaff = np.empty(user.size, dtype=np.int64)
        for t, location in enumerate(user):
            chaff[t] = self.step(int(location))
        return chaff


@register_strategy
class MyopicOnlineStrategy(ChaffStrategy):
    """Myopic online strategy: one myopic chaff (extra budget replicates it)."""

    name = "MO"
    is_online = True
    is_deterministic = True

    def generate(
        self,
        chain: MarkovChain,
        user_trajectory: np.ndarray,
        n_chaffs: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        user = self._validate_inputs(chain, user_trajectory, n_chaffs)
        # A single myopic chaff is all the ML detector can be misled by;
        # extra budget replicates it (deterministic strategies cannot
        # benefit from more chaffs, Section VII-A2).
        chaff = MyopicOnlineController(chain).run(user)
        return np.tile(chaff, (n_chaffs, 1))
