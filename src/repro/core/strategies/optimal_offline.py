"""Optimal offline (OO) chaff strategy — Algorithm 1 of the paper.

Given the user's *entire* trajectory, the OO strategy computes a chaff
trajectory that

* has likelihood at least as high as the user's (so the ML detector picks
  the chaff instead of the user), and
* among such trajectories, coincides with the user's trajectory in as few
  slots as possible (minimising the eavesdropper's tracking accuracy).

The paper solves this by dynamic programming over the trellis of Fig. 2
with an extra "remaining intersections" dimension ``i``.  We compute the
DP layer by layer in ``i`` (``i = 0, 1, 2, ...``) and stop at the first
layer whose optimal cost beats the user's path cost, which is equivalent
to the paper's ``O(T^2 L^2)`` formulation but typically far cheaper since
the optimal number of intersections ``i*`` is small.

The solver accepts an ``allowed`` mask of per-slot permitted cells, which
is how the robust ROO variant injects its random exclusion sets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...mobility.markov import MarkovChain
from ..trellis import (
    InfeasibleTrellisError,
    most_likely_trajectory,
    trajectory_cost,
    validate_allowed_mask,
)
from .base import ChaffStrategy, register_strategy

__all__ = ["OptimalOfflineStrategy", "OptimalOfflineResult", "solve_optimal_offline"]

_INF = np.inf


@dataclass(frozen=True)
class OptimalOfflineResult:
    """Outcome of the OO dynamic program.

    Attributes
    ----------
    trajectory:
        The chaff trajectory of length ``T``.
    intersections:
        Optimal value ``i*`` — number of slots where chaff and user coincide.
    chaff_cost:
        Trellis cost (negative log-likelihood) of the chaff trajectory.
    user_cost:
        Trellis cost of the user's trajectory.
    strict:
        ``True`` if the chaff's likelihood strictly exceeds the user's;
        ``False`` if only a tie was achievable (the detector then guesses).
    """

    trajectory: np.ndarray
    intersections: int
    chaff_cost: float
    user_cost: float
    strict: bool


def _terminal_layer(
    n_cells: int, allowed_last: np.ndarray, user_last: int, layer: int
) -> np.ndarray:
    """Cost-to-go at the final slot for intersection budget ``layer``."""
    costs = np.where(allowed_last, 0.0, _INF)
    if layer == 0:
        costs = costs.copy()
        costs[user_last] = _INF
    return costs


def solve_optimal_offline(
    chain: MarkovChain,
    user_trajectory: np.ndarray,
    *,
    allowed: np.ndarray | None = None,
    tolerance: float = 1e-9,
) -> OptimalOfflineResult:
    """Run Algorithm 1 and return the optimal chaff trajectory.

    Parameters
    ----------
    chain:
        User mobility model.
    user_trajectory:
        The user's realised trajectory (length ``T``).
    allowed:
        Optional boolean mask of shape ``(T, L)``; the chaff may only visit
        cells marked ``True`` (used by the ROO strategy).
    tolerance:
        Numerical slack when comparing path costs.
    """
    user = np.asarray(user_trajectory, dtype=np.int64)
    if user.ndim != 1 or user.size == 0:
        raise ValueError("user trajectory must be a non-empty 1-D sequence")
    horizon = user.size
    n_cells = chain.n_states
    mask = validate_allowed_mask(allowed, horizon, n_cells)

    neg_log_pi = -chain.log_stationary
    neg_log_P = -chain.log_transition_matrix
    user_cost = trajectory_cost(chain, user)

    # Decide whether a strictly better path exists at all (unconstrained in
    # intersections); this fixes the comparison used for i*.
    best_unconstrained = most_likely_trajectory(chain, horizon, allowed=mask)
    best_cost = trajectory_cost(chain, best_unconstrained)
    strict = best_cost < user_cost - tolerance

    def beats_user(cost: float) -> bool:
        if strict:
            return cost < user_cost - tolerance
        return cost <= user_cost + tolerance

    previous_costs: list[np.ndarray] | None = None  # K^{i-1}_t for all t
    next_hops_by_layer: list[np.ndarray] = []  # n^i_t arrays, indexed by i
    start_by_layer: list[int] = []
    total_by_layer: list[float] = []

    max_layers = horizon + 1
    chosen_layer: int | None = None
    for layer in range(max_layers):
        costs = [np.empty(0)] * horizon  # K^layer_t, each (L,)
        hops = np.full((horizon, n_cells), -1, dtype=np.int64)
        costs[horizon - 1] = _terminal_layer(
            n_cells, mask[horizon - 1], int(user[horizon - 1]), layer
        )
        for t in range(horizon - 2, -1, -1):
            next_same = costs[t + 1]
            candidate_same = neg_log_P + next_same[None, :]
            best_next_same = np.argmin(candidate_same, axis=1)
            best_cost_same = candidate_same[np.arange(n_cells), best_next_same]
            if layer >= 1 and previous_costs is not None:
                next_lower = previous_costs[t + 1]
                candidate_lower = neg_log_P + next_lower[None, :]
                best_next_lower = np.argmin(candidate_lower, axis=1)
                best_cost_lower = candidate_lower[np.arange(n_cells), best_next_lower]
            else:
                best_next_lower = np.zeros(n_cells, dtype=np.int64)
                best_cost_lower = np.full(n_cells, _INF)
            layer_cost = best_cost_same.copy()
            layer_hop = best_next_same.copy()
            user_cell = int(user[t])
            layer_cost[user_cell] = best_cost_lower[user_cell]
            layer_hop[user_cell] = best_next_lower[user_cell]
            layer_cost[~mask[t]] = _INF
            costs[t] = layer_cost
            hops[t] = layer_hop
        start_costs = neg_log_pi + costs[0]
        start_cell = int(np.argmin(start_costs))
        total_cost = float(start_costs[start_cell])

        next_hops_by_layer.append(hops)
        start_by_layer.append(start_cell)
        total_by_layer.append(total_cost)
        previous_costs = costs

        if np.isfinite(total_cost) and beats_user(total_cost):
            chosen_layer = layer
            break

    if chosen_layer is None:
        raise InfeasibleTrellisError(
            "optimal offline DP found no trajectory at least as likely as the user's"
        )

    # Backtrack: consume one unit of intersection budget whenever the chaff
    # sits on the user's cell.
    trajectory = np.empty(horizon, dtype=np.int64)
    budget = chosen_layer
    trajectory[0] = start_by_layer[chosen_layer]
    for t in range(horizon - 1):
        current = int(trajectory[t])
        # The stored next hop for budget ``b`` already accounts for an
        # intersection at slot ``t`` (it reads the lower layer when the chaff
        # sits on the user's cell), so look up first, then decrement.
        trajectory[t + 1] = next_hops_by_layer[budget][t, current]
        if current == int(user[t]):
            budget -= 1
        if budget < 0:  # pragma: no cover - guarded by DP construction
            raise RuntimeError("intersection budget went negative during backtracking")

    intersections = int(np.sum(trajectory == user))
    chaff_cost = trajectory_cost(chain, trajectory)
    return OptimalOfflineResult(
        trajectory=trajectory,
        intersections=intersections,
        chaff_cost=chaff_cost,
        user_cost=user_cost,
        strict=strict,
    )


@register_strategy
class OptimalOfflineStrategy(ChaffStrategy):
    """Optimal offline strategy: one optimal chaff (extra budget replicates it)."""

    name = "OO"
    is_online = False
    is_deterministic = True

    def generate(
        self,
        chain: MarkovChain,
        user_trajectory: np.ndarray,
        n_chaffs: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        user = self._validate_inputs(chain, user_trajectory, n_chaffs)
        # A deterministic detector is already defeated by the single optimal
        # chaff (Section IV-C); extra budget is spent on replicas, matching
        # the paper's observation that deterministic strategies cannot
        # benefit from more chaffs.
        chaff = solve_optimal_offline(chain, user).trajectory
        return np.tile(chaff, (n_chaffs, 1))
