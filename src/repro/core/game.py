"""The location-privacy game: user + chaffs vs. eavesdropper.

A single *episode* of the game consists of

1. the user's trajectory over ``T`` slots (sampled from the mobility model
   or supplied externally, e.g. a taxi trace);
2. the chaff trajectories produced by a chaff control strategy;
3. optionally, background trajectories of other users co-existing in the
   system (the multi-user / trace-driven setting of Section VII-B);
4. the eavesdropper's detection decision;
5. the per-slot tracking outcome: whether the cell of the detected
   trajectory coincides with the user's true cell.

The paper's two performance measures fall out directly:

* *detection accuracy* — probability the detector picks the user's own
  trajectory;
* *tracking accuracy* — time-average probability that the detected
  trajectory's cell equals the user's cell (Section II-D), which is the
  quantity all figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..mobility.markov import MarkovChain
from .eavesdropper.detector import (
    BatchDetectionOutcome,
    DetectionOutcome,
    TrajectoryDetector,
)
from .strategies.base import ChaffStrategy

__all__ = ["EpisodeResult", "BatchEpisodeResult", "PrivacyGame"]


@dataclass(frozen=True)
class EpisodeResult:
    """Outcome of a single privacy-game episode.

    Attributes
    ----------
    user_trajectory:
        The user's cell trajectory, length ``T``.
    chaff_trajectories:
        ``(n_chaffs, T)`` chaff trajectories (may be empty).
    observed_trajectories:
        The full ``(N, T)`` array handed to the detector — user first, then
        chaffs, then any background users.
    detection:
        The detector's decision and scores.
    tracked_per_slot:
        Boolean array of length ``T``: slot-by-slot tracking success of the
        eavesdropper.
    detected_user:
        Whether the detector selected the user's own trajectory.
    """

    user_trajectory: np.ndarray
    chaff_trajectories: np.ndarray
    observed_trajectories: np.ndarray
    detection: DetectionOutcome
    tracked_per_slot: np.ndarray
    detected_user: bool

    @property
    def horizon(self) -> int:
        """Number of time slots ``T``."""
        return int(self.user_trajectory.size)

    @property
    def tracking_accuracy(self) -> float:
        """Time-average tracking accuracy over this episode."""
        return float(self.tracked_per_slot.mean())


@dataclass(frozen=True)
class BatchEpisodeResult:
    """Outcome of ``R`` privacy-game episodes played as one array batch.

    Everything carries a leading run axis: ``user_trajectories`` is
    ``(R, T)``, ``chaff_trajectories`` ``(R, n_chaffs, T)``,
    ``observed_trajectories`` ``(R, N, T)``, and the tracking indicators
    ``(R, T)``.  :meth:`episodes` materialises the equivalent list of
    per-run :class:`EpisodeResult` objects; :meth:`aggregate` produces the
    same ``TrackingStatistics`` the looped harness computes.
    """

    user_trajectories: np.ndarray
    chaff_trajectories: np.ndarray
    observed_trajectories: np.ndarray
    detection: BatchDetectionOutcome
    tracked_per_slot: np.ndarray
    detected_user: np.ndarray

    @property
    def n_runs(self) -> int:
        """Number of episodes ``R`` in the batch."""
        return int(self.user_trajectories.shape[0])

    @property
    def horizon(self) -> int:
        """Number of time slots ``T``."""
        return int(self.user_trajectories.shape[1])

    def episode(self, run: int) -> EpisodeResult:
        """The per-run :class:`EpisodeResult` view of one episode."""
        return EpisodeResult(
            user_trajectory=self.user_trajectories[run],
            chaff_trajectories=self.chaff_trajectories[run],
            observed_trajectories=self.observed_trajectories[run],
            detection=self.detection.outcome(run),
            tracked_per_slot=self.tracked_per_slot[run],
            detected_user=bool(self.detected_user[run]),
        )

    def episodes(self) -> list[EpisodeResult]:
        """All episodes as a list (compatibility with looped consumers)."""
        return [self.episode(run) for run in range(self.n_runs)]

    def aggregate(self):
        """Aggregate to :class:`~repro.analysis.metrics.TrackingStatistics`."""
        from ..analysis.metrics import aggregate_batch

        return aggregate_batch(self)


class PrivacyGame:
    """Binds a mobility model, a chaff strategy and a detector.

    Parameters
    ----------
    chain:
        The user's mobility model; also the model the detector uses.
    strategy:
        Chaff control strategy, or ``None`` for the no-chaff baseline.
    detector:
        The eavesdropper's detector.
    n_services:
        Total number of service trajectories ``N`` generated for the user
        (1 user + ``N - 1`` chaffs).  Ignored when ``strategy`` is ``None``.
    """

    def __init__(
        self,
        chain: MarkovChain,
        strategy: ChaffStrategy | None,
        detector: TrajectoryDetector,
        *,
        n_services: int = 2,
    ) -> None:
        if n_services < 1:
            raise ValueError("n_services must be at least 1")
        if strategy is not None and n_services < 2:
            raise ValueError("a chaff strategy requires n_services >= 2")
        self.chain = chain
        self.strategy = strategy
        self.detector = detector
        self.n_services = n_services

    # ------------------------------------------------------------------
    @property
    def n_chaffs(self) -> int:
        """Number of chaff services (``N - 1``, or 0 without a strategy)."""
        if self.strategy is None:
            return 0
        return self.n_services - 1

    def run_episode(
        self,
        rng: np.random.Generator,
        *,
        horizon: int | None = None,
        user_trajectory: np.ndarray | None = None,
        background_trajectories: np.ndarray | None = None,
    ) -> EpisodeResult:
        """Play one episode of the game.

        Exactly one of ``horizon`` and ``user_trajectory`` must be given:
        either the user's trajectory is sampled from the mobility model for
        ``horizon`` slots, or an externally supplied trajectory (e.g. a
        taxi trace) is used.
        """
        if (horizon is None) == (user_trajectory is None):
            raise ValueError("provide exactly one of horizon or user_trajectory")
        if user_trajectory is None:
            user = self.chain.sample_trajectory(int(horizon), rng)
        else:
            user = np.asarray(user_trajectory, dtype=np.int64)
            if user.ndim != 1 or user.size == 0:
                raise ValueError("user_trajectory must be a non-empty 1-D array")

        if self.strategy is not None and self.n_chaffs > 0:
            chaffs = self.strategy.generate(self.chain, user, self.n_chaffs, rng)
        else:
            chaffs = np.empty((0, user.size), dtype=np.int64)

        pieces = [user[None, :], chaffs]
        if background_trajectories is not None:
            background = np.asarray(background_trajectories, dtype=np.int64)
            if background.size:
                if background.ndim != 2 or background.shape[1] != user.size:
                    raise ValueError(
                        "background trajectories must be (M, T) with matching horizon"
                    )
                pieces.append(background)
        observed = np.concatenate(pieces, axis=0)

        detection = self.detector.detect(self.chain, observed, rng)
        chosen = observed[detection.chosen_index]
        tracked = chosen == user
        return EpisodeResult(
            user_trajectory=user,
            chaff_trajectories=chaffs,
            observed_trajectories=observed,
            detection=detection,
            tracked_per_slot=tracked,
            detected_user=(detection.chosen_index == 0),
        )

    def run_batch(
        self,
        rngs: Sequence[np.random.Generator],
        *,
        horizon: int | None = None,
        user_trajectories: np.ndarray | None = None,
        background_trajectories: np.ndarray | None = None,
    ) -> BatchEpisodeResult:
        """Play one episode per generator, executed as whole-batch arrays.

        ``rngs`` holds one independent generator per run (the Monte-Carlo
        harness spawns them from a single ``SeedSequence``).  Exactly one
        of ``horizon`` (sample every user from the mobility model) and
        ``user_trajectories`` (an ``(R, T)`` array of externally supplied
        trajectories) must be given; ``background_trajectories`` is an
        optional ``(R, M, T)`` tensor of co-existing users.

        Every stage — user sampling, chaff generation, detection — runs
        vectorised over the run axis while consuming each run's generator
        in the scalar order, so the result is bit-identical to looping
        :meth:`run_episode` over the same generators.
        """
        rngs = list(rngs)
        if not rngs:
            raise ValueError("need at least one generator")
        if (horizon is None) == (user_trajectories is None):
            raise ValueError("provide exactly one of horizon or user_trajectories")
        if user_trajectories is None:
            users = self.chain.sample_trajectories_batch(int(horizon), rngs)
        else:
            users = np.asarray(user_trajectories, dtype=np.int64)
            if users.ndim != 2 or users.size == 0:
                raise ValueError("user_trajectories must be a non-empty (R, T) array")
            if users.shape[0] != len(rngs):
                raise ValueError("need exactly one generator per run")
        n_runs, n_slots = users.shape

        if self.strategy is not None and self.n_chaffs > 0:
            chaffs = self.strategy.generate_batch(
                self.chain, users, self.n_chaffs, rngs
            )
        else:
            chaffs = np.empty((n_runs, 0, n_slots), dtype=np.int64)

        pieces = [users[:, None, :], chaffs]
        if background_trajectories is not None:
            background = np.asarray(background_trajectories, dtype=np.int64)
            if background.size:
                if background.ndim != 3 or background.shape[::2] != (n_runs, n_slots):
                    raise ValueError(
                        "background trajectories must be (R, M, T) with matching "
                        "runs and horizon"
                    )
                pieces.append(background)
        observed = np.concatenate(pieces, axis=1)

        detection = self.detector.detect_batch(self.chain, observed, rngs)
        chosen = observed[np.arange(n_runs), detection.chosen_indices]
        tracked = chosen == users
        return BatchEpisodeResult(
            user_trajectories=users,
            chaff_trajectories=chaffs,
            observed_trajectories=observed,
            detection=detection,
            tracked_per_slot=tracked,
            detected_user=(detection.chosen_indices == 0),
        )
