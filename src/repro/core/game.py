"""The location-privacy game: user + chaffs vs. eavesdropper.

A single *episode* of the game consists of

1. the user's trajectory over ``T`` slots (sampled from the mobility model
   or supplied externally, e.g. a taxi trace);
2. the chaff trajectories produced by a chaff control strategy;
3. optionally, background trajectories of other users co-existing in the
   system (the multi-user / trace-driven setting of Section VII-B);
4. the eavesdropper's detection decision;
5. the per-slot tracking outcome: whether the cell of the detected
   trajectory coincides with the user's true cell.

The paper's two performance measures fall out directly:

* *detection accuracy* — probability the detector picks the user's own
  trajectory;
* *tracking accuracy* — time-average probability that the detected
  trajectory's cell equals the user's cell (Section II-D), which is the
  quantity all figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mobility.markov import MarkovChain
from .eavesdropper.detector import DetectionOutcome, TrajectoryDetector
from .strategies.base import ChaffStrategy

__all__ = ["EpisodeResult", "PrivacyGame"]


@dataclass(frozen=True)
class EpisodeResult:
    """Outcome of a single privacy-game episode.

    Attributes
    ----------
    user_trajectory:
        The user's cell trajectory, length ``T``.
    chaff_trajectories:
        ``(n_chaffs, T)`` chaff trajectories (may be empty).
    observed_trajectories:
        The full ``(N, T)`` array handed to the detector — user first, then
        chaffs, then any background users.
    detection:
        The detector's decision and scores.
    tracked_per_slot:
        Boolean array of length ``T``: slot-by-slot tracking success of the
        eavesdropper.
    detected_user:
        Whether the detector selected the user's own trajectory.
    """

    user_trajectory: np.ndarray
    chaff_trajectories: np.ndarray
    observed_trajectories: np.ndarray
    detection: DetectionOutcome
    tracked_per_slot: np.ndarray
    detected_user: bool

    @property
    def horizon(self) -> int:
        """Number of time slots ``T``."""
        return int(self.user_trajectory.size)

    @property
    def tracking_accuracy(self) -> float:
        """Time-average tracking accuracy over this episode."""
        return float(self.tracked_per_slot.mean())


class PrivacyGame:
    """Binds a mobility model, a chaff strategy and a detector.

    Parameters
    ----------
    chain:
        The user's mobility model; also the model the detector uses.
    strategy:
        Chaff control strategy, or ``None`` for the no-chaff baseline.
    detector:
        The eavesdropper's detector.
    n_services:
        Total number of service trajectories ``N`` generated for the user
        (1 user + ``N - 1`` chaffs).  Ignored when ``strategy`` is ``None``.
    """

    def __init__(
        self,
        chain: MarkovChain,
        strategy: ChaffStrategy | None,
        detector: TrajectoryDetector,
        *,
        n_services: int = 2,
    ) -> None:
        if n_services < 1:
            raise ValueError("n_services must be at least 1")
        if strategy is not None and n_services < 2:
            raise ValueError("a chaff strategy requires n_services >= 2")
        self.chain = chain
        self.strategy = strategy
        self.detector = detector
        self.n_services = n_services

    # ------------------------------------------------------------------
    @property
    def n_chaffs(self) -> int:
        """Number of chaff services (``N - 1``, or 0 without a strategy)."""
        if self.strategy is None:
            return 0
        return self.n_services - 1

    def run_episode(
        self,
        rng: np.random.Generator,
        *,
        horizon: int | None = None,
        user_trajectory: np.ndarray | None = None,
        background_trajectories: np.ndarray | None = None,
    ) -> EpisodeResult:
        """Play one episode of the game.

        Exactly one of ``horizon`` and ``user_trajectory`` must be given:
        either the user's trajectory is sampled from the mobility model for
        ``horizon`` slots, or an externally supplied trajectory (e.g. a
        taxi trace) is used.
        """
        if (horizon is None) == (user_trajectory is None):
            raise ValueError("provide exactly one of horizon or user_trajectory")
        if user_trajectory is None:
            user = self.chain.sample_trajectory(int(horizon), rng)
        else:
            user = np.asarray(user_trajectory, dtype=np.int64)
            if user.ndim != 1 or user.size == 0:
                raise ValueError("user_trajectory must be a non-empty 1-D array")

        if self.strategy is not None and self.n_chaffs > 0:
            chaffs = self.strategy.generate(self.chain, user, self.n_chaffs, rng)
        else:
            chaffs = np.empty((0, user.size), dtype=np.int64)

        pieces = [user[None, :], chaffs]
        if background_trajectories is not None:
            background = np.asarray(background_trajectories, dtype=np.int64)
            if background.size:
                if background.ndim != 2 or background.shape[1] != user.size:
                    raise ValueError(
                        "background trajectories must be (M, T) with matching horizon"
                    )
                pieces.append(background)
        observed = np.concatenate(pieces, axis=0)

        detection = self.detector.detect(self.chain, observed, rng)
        chosen = observed[detection.chosen_index]
        tracked = chosen == user
        return EpisodeResult(
            user_trajectory=user,
            chaff_trajectories=chaffs,
            observed_trajectories=observed,
            detection=detection,
            tracked_per_slot=tracked,
            detected_user=(detection.chosen_index == 0),
        )
