"""Trace preprocessing pipeline (Section VII-B1).

The paper's pipeline for the taxi traces is:

1. extract traces over a 100-minute window with updates every minute;
2. filter out inactive nodes (no update for 5 minutes);
3. regulate the irregular update intervals via linear interpolation;
4. quantise positions into Voronoi cells around cell towers;
5. fit the empirical Markov mobility model of the whole population.

:class:`TracePipeline` packages steps 2-5; the individual functions are
exposed for unit testing and for callers that need only part of the
pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..geo.points import GeoPoint
from ..geo.voronoi import VoronoiQuantizer
from ..mobility.estimation import fit_markov_chain
from ..mobility.markov import MarkovChain
from .taxi import RawTrace

__all__ = [
    "filter_inactive_traces",
    "resample_trace",
    "quantize_traces",
    "CellTrajectoryDataset",
    "TracePipeline",
]


def filter_inactive_traces(
    traces: Sequence[RawTrace],
    *,
    max_gap_s: float = 300.0,
    min_duration_s: float = 0.0,
) -> list[RawTrace]:
    """Drop nodes with any silent gap exceeding ``max_gap_s``.

    The paper filters out inactive nodes ("no update for 5 minutes").
    Nodes whose total span is shorter than ``min_duration_s`` are also
    dropped because they cannot be resampled onto the full time grid.
    """
    if max_gap_s <= 0:
        raise ValueError("max_gap_s must be positive")
    kept = []
    for trace in traces:
        if len(trace.fixes) < 2:
            continue
        if trace.max_gap() > max_gap_s:
            continue
        if trace.duration < min_duration_s:
            continue
        kept.append(trace)
    return kept


def resample_trace(
    trace: RawTrace,
    *,
    interval_s: float = 60.0,
    duration_s: float | None = None,
    start_s: float | None = None,
) -> list[GeoPoint]:
    """Linearly interpolate a raw trace onto a regular time grid.

    Timestamps outside the observed span are clamped to the first/last fix
    (constant extrapolation), which matches the effect of the paper's
    filtering + interpolation step for nodes active over the whole window.
    """
    if interval_s <= 0:
        raise ValueError("interval_s must be positive")
    if len(trace.fixes) < 2:
        raise ValueError("need at least two fixes to resample")
    timestamps = trace.timestamps()
    latitudes = np.array([fix.position.latitude for fix in trace.fixes])
    longitudes = np.array([fix.position.longitude for fix in trace.fixes])
    if start_s is None:
        start_s = 0.0
    if duration_s is None:
        duration_s = float(timestamps[-1] - start_s)
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    grid = np.arange(start_s, start_s + duration_s + 1e-9, interval_s)
    lat_interp = np.interp(grid, timestamps, latitudes)
    lon_interp = np.interp(grid, timestamps, longitudes)
    return [GeoPoint(float(lat), float(lon)) for lat, lon in zip(lat_interp, lon_interp, strict=True)]


def quantize_traces(
    resampled: Sequence[Sequence[GeoPoint]], quantizer: VoronoiQuantizer
) -> np.ndarray:
    """Quantise resampled traces into an ``(n_nodes, T)`` cell-index array."""
    if not resampled:
        raise ValueError("no traces to quantise")
    lengths = {len(points) for points in resampled}
    if len(lengths) != 1:
        raise ValueError("all resampled traces must have the same length")
    return np.stack(
        [quantizer.quantize_points(points) for points in resampled], axis=0
    )


@dataclass
class CellTrajectoryDataset:
    """The output of the trace pipeline.

    Attributes
    ----------
    trajectories:
        ``(n_nodes, T)`` integer array of cell indices.
    node_ids:
        Original node identifiers, aligned with the rows of ``trajectories``.
    mobility_model:
        The empirical population-level Markov chain fitted on the
        trajectories (the eavesdropper's model of "how typical users move").
    quantizer:
        The Voronoi quantiser (defines the cell geometry).
    """

    trajectories: np.ndarray
    node_ids: list[int]
    mobility_model: MarkovChain
    quantizer: VoronoiQuantizer

    def __post_init__(self) -> None:
        self.trajectories = np.asarray(self.trajectories, dtype=np.int64)
        if self.trajectories.ndim != 2:
            raise ValueError("trajectories must be a 2-D array")
        if self.trajectories.shape[0] != len(self.node_ids):
            raise ValueError("node_ids length must match number of trajectories")

    @property
    def n_nodes(self) -> int:
        """Number of nodes that survived preprocessing."""
        return self.trajectories.shape[0]

    @property
    def horizon(self) -> int:
        """Number of time slots ``T``."""
        return self.trajectories.shape[1]

    @property
    def n_cells(self) -> int:
        """Number of Voronoi cells in the quantiser."""
        return self.quantizer.n_cells

    def trajectory_of(self, node_id: int) -> np.ndarray:
        """Cell trajectory of a specific node id."""
        try:
            row = self.node_ids.index(node_id)
        except ValueError as exc:
            raise KeyError(f"node {node_id} not in dataset") from exc
        return self.trajectories[row]

    def empirical_stationary(self) -> np.ndarray:
        """Empirical distribution of visited cells across the dataset
        (the histogram plotted in Fig. 8(b))."""
        counts = np.zeros(self.n_cells, dtype=float)
        np.add.at(counts, self.trajectories.ravel(), 1.0)
        return counts / counts.sum()


@dataclass
class TracePipeline:
    """End-to-end preprocessing: raw GPS traces -> cell trajectories + model.

    Parameters
    ----------
    quantizer:
        Voronoi quantiser defining the cells.
    slot_interval_s:
        Resampling interval (the paper uses one minute).
    max_gap_s:
        Inactivity threshold for dropping nodes (the paper uses 5 minutes).
    horizon_slots:
        Number of slots to keep per node (the paper uses 100).
    smoothing:
        Additive smoothing for the empirical transition matrix.
    """

    quantizer: VoronoiQuantizer
    slot_interval_s: float = 60.0
    max_gap_s: float = 300.0
    horizon_slots: int = 100
    smoothing: float = 1e-3

    def __post_init__(self) -> None:
        if self.horizon_slots < 2:
            raise ValueError("horizon_slots must be at least 2")
        if self.slot_interval_s <= 0:
            raise ValueError("slot_interval_s must be positive")

    def run(self, traces: Sequence[RawTrace]) -> CellTrajectoryDataset:
        """Run the full pipeline on raw traces."""
        duration_s = self.slot_interval_s * (self.horizon_slots - 1)
        active = filter_inactive_traces(
            traces, max_gap_s=self.max_gap_s, min_duration_s=duration_s * 0.5
        )
        if not active:
            raise ValueError("no traces survive the inactivity filter")
        resampled = []
        node_ids = []
        for trace in active:
            points = resample_trace(
                trace, interval_s=self.slot_interval_s, duration_s=duration_s
            )
            resampled.append(points[: self.horizon_slots])
            node_ids.append(trace.node_id)
        trajectories = quantize_traces(resampled, self.quantizer)
        model = fit_markov_chain(
            trajectories, self.quantizer.n_cells, smoothing=self.smoothing
        )
        return CellTrajectoryDataset(
            trajectories=trajectories,
            node_ids=node_ids,
            mobility_model=model,
            quantizer=self.quantizer,
        )
