"""Synthetic taxi-fleet GPS trace generator.

The paper's trace-driven evaluation uses the CRAWDAD ``epfl/mobility``
San Francisco taxi traces (174 nodes over a 100-minute window, location
updates roughly every minute with irregular intervals).  That dataset is
not redistributable here, so this module generates a synthetic fleet with
the same statistical features the evaluation relies on:

* GPS fixes with *irregular* update intervals (exponential jitter around a
  nominal one-minute period) and occasional long silent gaps, so that the
  paper's preprocessing (inactivity filtering + linear-interpolation
  resampling) is exercised;
* a shared, spatially and temporally skewed mobility structure: taxis
  shuttle between a small set of urban "anchor" districts with strong
  return tendencies, producing the heavy-tailed empirical stationary
  distribution of Fig. 8(b);
* per-node heterogeneity in predictability: a fraction of "loiterer"
  nodes stay near a single anchor (these are the users the eavesdropper
  tracks with high accuracy, Fig. 9(a)), while "roamer" nodes move widely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from ..geo.points import BoundingBox, GeoPoint, SAN_FRANCISCO_BBOX

__all__ = ["GpsFix", "RawTrace", "TaxiFleetConfig", "TaxiFleetGenerator"]


@dataclass(frozen=True)
class GpsFix:
    """A single GPS fix: a timestamp (seconds since trace start) and a position."""

    timestamp: float
    position: GeoPoint

    def __post_init__(self) -> None:
        if self.timestamp < 0:
            raise ValueError("timestamp must be non-negative")


@dataclass
class RawTrace:
    """The raw (irregular) GPS trace of one node."""

    node_id: int
    fixes: List[GpsFix] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise ValueError("node_id must be non-negative")
        self.fixes = sorted(self.fixes, key=lambda fix: fix.timestamp)

    def add_fix(self, fix: GpsFix) -> None:
        """Append a fix, keeping fixes sorted by timestamp."""
        self.fixes.append(fix)
        self.fixes.sort(key=lambda item: item.timestamp)

    @property
    def duration(self) -> float:
        """Time span covered by the trace in seconds (0 for < 2 fixes)."""
        if len(self.fixes) < 2:
            return 0.0
        return self.fixes[-1].timestamp - self.fixes[0].timestamp

    def max_gap(self) -> float:
        """Largest gap between consecutive fixes in seconds."""
        if len(self.fixes) < 2:
            return float("inf") if not self.fixes else 0.0
        timestamps = np.array([fix.timestamp for fix in self.fixes])
        return float(np.max(np.diff(timestamps)))

    def timestamps(self) -> np.ndarray:
        """All fix timestamps as an array."""
        return np.array([fix.timestamp for fix in self.fixes], dtype=float)

    def positions(self) -> list[GeoPoint]:
        """All fix positions in timestamp order."""
        return [fix.position for fix in self.fixes]


@dataclass(frozen=True)
class TaxiFleetConfig:
    """Configuration of the synthetic taxi fleet.

    Defaults match the paper's extraction: 174 nodes, a 100-minute window,
    nominal one-minute update interval.
    """

    n_nodes: int = 174
    duration_minutes: float = 100.0
    nominal_update_interval_s: float = 60.0
    update_jitter: float = 0.35
    silence_probability: float = 0.02
    silence_duration_s: float = 360.0
    n_anchors: int = 8
    anchor_std_degrees: float = 0.012
    home_offset_std_degrees: float = 0.02
    loiterer_fraction: float = 0.15
    loiterer_switch_probability: float = 0.04
    roamer_switch_probability: float = 0.25
    speed_degrees_per_minute: float = 0.01
    movement_noise_fraction: float = 0.5
    bbox: BoundingBox = SAN_FRANCISCO_BBOX

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be positive")
        if self.duration_minutes <= 0:
            raise ValueError("duration_minutes must be positive")
        if self.nominal_update_interval_s <= 0:
            raise ValueError("nominal_update_interval_s must be positive")
        if not 0 <= self.update_jitter < 1:
            raise ValueError("update_jitter must be in [0, 1)")
        if not 0 <= self.silence_probability < 1:
            raise ValueError("silence_probability must be in [0, 1)")
        if self.n_anchors < 1:
            raise ValueError("n_anchors must be positive")
        if self.home_offset_std_degrees < 0:
            raise ValueError("home_offset_std_degrees must be non-negative")
        if self.movement_noise_fraction < 0:
            raise ValueError("movement_noise_fraction must be non-negative")
        if not 0 <= self.loiterer_fraction <= 1:
            raise ValueError("loiterer_fraction must be in [0, 1]")
        for name in ("loiterer_switch_probability", "roamer_switch_probability"):
            value = getattr(self, name)
            if not 0 <= value <= 1:
                raise ValueError(f"{name} must be in [0, 1]")


class TaxiFleetGenerator:
    """Generates a synthetic taxi fleet of :class:`RawTrace` objects."""

    def __init__(self, config: TaxiFleetConfig | None = None) -> None:
        self.config = config or TaxiFleetConfig()

    # ------------------------------------------------------------------
    def generate(self, rng: np.random.Generator | None = None) -> list[RawTrace]:
        """Generate the full fleet of raw traces."""
        rng = rng or np.random.default_rng(2017)
        anchors = self._generate_anchors(rng)
        anchor_weights = self._anchor_popularity(rng)
        traces = []
        for node_id in range(self.config.n_nodes):
            is_loiterer = rng.uniform() < self.config.loiterer_fraction
            traces.append(
                self._generate_node_trace(
                    node_id, anchors, anchor_weights, is_loiterer, rng
                )
            )
        return traces

    # ------------------------------------------------------------------
    def _generate_anchors(self, rng: np.random.Generator) -> list[GeoPoint]:
        """Urban anchor districts taxis shuttle between."""
        bbox = self.config.bbox
        return [bbox.sample_uniform(rng) for _ in range(self.config.n_anchors)]

    def _anchor_popularity(self, rng: np.random.Generator) -> np.ndarray:
        """Zipf-like popularity over anchors (spatial skew of the fleet)."""
        ranks = np.arange(1, self.config.n_anchors + 1, dtype=float)
        weights = 1.0 / ranks
        permutation = rng.permutation(self.config.n_anchors)
        weights = weights[permutation]
        return weights / weights.sum()

    def _generate_node_trace(
        self,
        node_id: int,
        anchors: Sequence[GeoPoint],
        anchor_weights: np.ndarray,
        is_loiterer: bool,
        rng: np.random.Generator,
    ) -> RawTrace:
        config = self.config
        duration_s = config.duration_minutes * 60.0
        switch_probability = (
            config.loiterer_switch_probability
            if is_loiterer
            else config.roamer_switch_probability
        )
        home_anchor = int(rng.choice(len(anchors), p=anchor_weights))
        # Each node has its own home point near its anchor, so loiterers from
        # the same district still produce distinct (non-duplicate) cell
        # trajectories once quantised.
        home_point = config.bbox.clamp(
            GeoPoint(
                anchors[home_anchor].latitude
                + float(rng.normal(0.0, config.home_offset_std_degrees)),
                anchors[home_anchor].longitude
                + float(rng.normal(0.0, config.home_offset_std_degrees)),
            )
        )
        target_point = home_point
        position = self._jitter_around(home_point, rng)
        trace = RawTrace(node_id=node_id)
        time_s = float(rng.uniform(0.0, config.nominal_update_interval_s))
        while time_s <= duration_s:
            trace.add_fix(GpsFix(timestamp=time_s, position=position))
            # Possibly pick a new destination.
            if rng.uniform() < switch_probability:
                if is_loiterer:
                    # Loiterers hop between their home point and nearby spots
                    # in the same district.
                    target_point = self._jitter_around(home_point, rng)
                else:
                    anchor = anchors[int(rng.choice(len(anchors), p=anchor_weights))]
                    target_point = self._jitter_around(anchor, rng)
            position = self._advance_position(position, target_point, rng)
            # Irregular update interval, with occasional long silences.
            interval = config.nominal_update_interval_s * float(
                rng.uniform(1.0 - config.update_jitter, 1.0 + config.update_jitter)
            )
            if rng.uniform() < config.silence_probability:
                interval += float(rng.exponential(config.silence_duration_s))
            time_s += interval
        return trace

    def _jitter_around(self, anchor: GeoPoint, rng: np.random.Generator) -> GeoPoint:
        config = self.config
        return config.bbox.clamp(
            GeoPoint(
                float(rng.normal(anchor.latitude, config.anchor_std_degrees)),
                float(rng.normal(anchor.longitude, config.anchor_std_degrees)),
            )
        )

    def _advance_position(
        self, position: GeoPoint, target: GeoPoint, rng: np.random.Generator
    ) -> GeoPoint:
        """Move one nominal-interval step toward the target anchor with noise."""
        config = self.config
        step = config.speed_degrees_per_minute * (
            config.nominal_update_interval_s / 60.0
        )
        dlat = target.latitude - position.latitude
        dlon = target.longitude - position.longitude
        norm = float(np.hypot(dlat, dlon))
        if norm > 1e-9:
            scale = min(1.0, step / norm)
            dlat *= scale
            dlon *= scale
        noise_std = config.anchor_std_degrees * config.movement_noise_fraction
        return config.bbox.clamp(
            GeoPoint(
                position.latitude + dlat + float(rng.normal(0.0, noise_std)),
                position.longitude + dlon + float(rng.normal(0.0, noise_std)),
            )
        )
