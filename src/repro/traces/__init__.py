"""Trace substrate: synthetic taxi traces and the preprocessing pipeline."""

from .taxi import GpsFix, RawTrace, TaxiFleetConfig, TaxiFleetGenerator
from .preprocess import (
    CellTrajectoryDataset,
    TracePipeline,
    filter_inactive_traces,
    quantize_traces,
    resample_trace,
)

__all__ = [
    "GpsFix",
    "RawTrace",
    "TaxiFleetConfig",
    "TaxiFleetGenerator",
    "CellTrajectoryDataset",
    "TracePipeline",
    "filter_inactive_traces",
    "quantize_traces",
    "resample_trace",
]
