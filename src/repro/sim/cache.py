"""Content-addressed on-disk cache for experiment results.

A full figure regeneration runs thousands of Monte-Carlo episodes; the
result, however, is a small JSON document that is a pure function of
*(experiment id, configuration, package version)*.  The cache stores each
:class:`~repro.sim.results.ExperimentResult` under the SHA-256 of that
key so repeat invocations (CLI re-runs, benchmark warm-ups, notebook
restarts) return in milliseconds instead of minutes.

Keying rules:

* the configuration enters the key as its canonical JSON form (sorted
  keys, no whitespace);
* execution-only settings that are proven not to affect the numbers —
  the ``engine`` choice, the ``workers`` count, the chain storage
  ``backend`` and the streaming knobs (``stream`` / ``chunk_slots`` /
  ``regions``), all bit-identical by construction — are stripped first,
  so a cached serial result satisfies a parallel re-run and vice versa;
* the package version is included, so upgrading the code invalidates
  every stale entry at once;
* anything that cannot be serialised deterministically (non-JSON keyword
  arguments) makes the call uncacheable rather than silently wrong.

Besides the memo-cache, this module hosts the :class:`EpisodeStore`: an
append/iterate chunk store the streaming fleet engine spills completed
horizon chunks through.  Where the memo-cache maps *whole experiment
configs* to small JSON results, the episode store holds the *large array
planes of one episode*, sharded along the time axis with a manifest, so
partial episodes survive interruption and bounded-memory consumers can
iterate chunk by chunk.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Iterator, Mapping

import numpy as np
from numpy.lib.format import open_memmap

from .results import ExperimentResult

__all__ = [
    "EXECUTION_ONLY_KEYS",
    "default_cache_dir",
    "experiment_cache_key",
    "ResultCache",
    "EpisodeStore",
]

#: Config keys that change how an experiment executes but never what it
#: computes (pinned by the engine/worker/backend/streaming equivalence
#: test suites).  The RPL006 contract check probes every one of these
#: against every registered experiment config, so a key listed here can
#: never leak back into a cache key.
EXECUTION_ONLY_KEYS = (
    "engine",
    "workers",
    "backend",
    "stream",
    "chunk_slots",
    "regions",
    "run_stack",
    # Telemetry knobs observe a run without touching its numbers or RNG
    # streams (pinned by the telemetry bit-identity suite), so recording
    # never fragments the cache.
    "telemetry",
    "metrics_out",
    "trace_out",
)


def default_cache_dir() -> Path:
    """Default cache location (``$REPRO_MEC_CACHE`` overrides it)."""
    override = os.environ.get("REPRO_MEC_CACHE")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-mec" / "results"


def _package_version() -> str:
    # Imported lazily: ``repro/__init__`` imports the experiment registry,
    # which imports this module, so a top-level import would be circular.
    from .. import __version__

    return __version__


def experiment_cache_key(
    experiment_id: str,
    config: Mapping[str, Any] | None = None,
    *,
    extra: Mapping[str, Any] | None = None,
    version: str | None = None,
) -> str | None:
    """Stable content hash for one experiment invocation.

    Returns ``None`` when the invocation is not cacheable (some argument
    has no deterministic JSON form).
    """
    if not experiment_id:
        raise ValueError("experiment_id must be non-empty")
    payload = {
        "experiment_id": experiment_id,
        "config": {
            key: value
            for key, value in dict(config or {}).items()
            if key not in EXECUTION_ONLY_KEYS
        },
        "extra": dict(extra or {}),
        "version": version if version is not None else _package_version(),
    }
    try:
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError):
        return None
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """Directory of ``<key>.json`` files holding experiment results.

    The cache is safe against concurrent writers (entries are written to
    a temporary file and atomically renamed into place) and against
    corrupt entries (unreadable files count as misses and are rewritten).
    ``hits`` / ``misses`` counters let callers report cache behaviour.

    A writer killed between creating its temporary file and the atomic
    rename leaves a ``*.tmp`` orphan behind; opening the cache sweeps
    those up (``orphans_removed`` counts them in :meth:`stats`).  The
    sweep is unconditional — the pure simulation layers may not consult
    file ages — so :meth:`put` retries its rename once in case a
    concurrent open swept a live temporary file.

    ``clock`` is an optional zero-argument monotonic clock (seconds);
    when injected — this module sits inside the no-wall-clock contract,
    so it never names one itself — :meth:`get` accumulates hit and miss
    latency, reported by :meth:`stats` and the CLI summary.
    """

    def __init__(
        self,
        cache_dir: str | Path | None = None,
        *,
        clock: "Any | None" = None,
    ) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self._clock = clock
        self.hit_time_s = 0.0
        self.miss_time_s = 0.0
        self.orphans_removed = self._sweep_orphans()

    def _sweep_orphans(self) -> int:
        """Delete ``*.tmp`` leftovers of interrupted writes; count them."""
        removed = 0
        if self.cache_dir.is_dir():
            for orphan in self.cache_dir.glob("*.tmp"):
                try:
                    orphan.unlink()
                except OSError:
                    continue
                removed += 1
        return removed

    def stats(self) -> "dict[str, int | float]":
        """Cache behaviour counters (including swept write orphans).

        The latency totals stay ``0.0`` unless a clock was injected at
        construction; latency is an observation, never an input, so the
        numbers of a cached run cannot depend on it.
        """
        return {
            "hits": self.hits,
            "misses": self.misses,
            "orphans_removed": self.orphans_removed,
            "hit_time_s": self.hit_time_s,
            "miss_time_s": self.miss_time_s,
        }

    def path_for(self, key: str) -> Path:
        """The on-disk path of a cache entry."""
        if not key:
            raise ValueError("key must be non-empty")
        return self.cache_dir / f"{key}.json"

    def get(self, key: str) -> ExperimentResult | None:
        """The cached result for ``key``, or ``None`` on a miss."""
        path = self.path_for(key)
        started = self._clock() if self._clock is not None else None
        try:
            result = ExperimentResult.load(path)
        except OSError:
            self.misses += 1
            if started is not None:
                self.miss_time_s += self._clock() - started
            return None
        except Exception:
            # Unreadable or wrong-shape entry (truncated write, foreign
            # file, older schema): a miss, so the caller recomputes and
            # overwrites it rather than crashing on stale on-disk state.
            self.misses += 1
            if started is not None:
                self.miss_time_s += self._clock() - started
            return None
        self.hits += 1
        if started is not None:
            self.hit_time_s += self._clock() - started
        return result

    def put(self, key: str, result: ExperimentResult) -> Path:
        """Store ``result`` under ``key`` and return the entry path."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = json.dumps(result.to_dict(), indent=2, sort_keys=True)
        handle = tempfile.NamedTemporaryFile(
            mode="w", dir=path.parent, suffix=".tmp", delete=False
        )
        try:
            with handle:
                handle.write(blob)
            try:
                os.replace(handle.name, path)
            except FileNotFoundError:
                # A concurrent cache open swept our temporary file as an
                # orphan between write and rename; write once more.
                with open(handle.name, "w") as retry:
                    retry.write(blob)
                os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        return path

    def clear(self) -> int:
        """Delete every entry; returns the number of files removed."""
        removed = 0
        if self.cache_dir.is_dir():
            for entry in self.cache_dir.glob("*.json"):
                entry.unlink(missing_ok=True)
                removed += 1
        return removed


# ----------------------------------------------------------------------
# Episode store: append/iterate chunk shards of one streaming episode
# ----------------------------------------------------------------------


class EpisodeStore:
    """Directory of chunk shards plus a manifest for one episode.

    The streaming fleet engine advances the horizon in fixed-size slot
    chunks and never holds a full ``(N, T)`` plane; each completed chunk
    is spilled here as ``<kind>-<index>.npy`` (atomic write), carry-over
    state snapshots land as ``carry-<index>.npz``, and full-horizon
    planes that must outlive a chunk (sampled trajectories and chaff
    plans) are disk-backed memmaps, so the writer's heap stays bounded
    by one chunk regardless of ``T``.

    The ``manifest.json`` records the episode shape, the chunk size and
    the set of completed chunks per kind; a reader (or a resumed writer)
    trusts only what the manifest lists, so a crash mid-chunk leaves a
    resumable prefix instead of a corrupt episode.
    """

    _MANIFEST = "manifest.json"

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._manifest: dict[str, Any] = {"meta": {}, "chunks": {}}
        manifest_path = self.root / self._MANIFEST
        if manifest_path.is_file():
            try:
                loaded = json.loads(manifest_path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                loaded = None
            if (
                isinstance(loaded, dict)
                and isinstance(loaded.get("meta"), dict)
                and isinstance(loaded.get("chunks"), dict)
            ):
                self._manifest = loaded

    # -- manifest ------------------------------------------------------
    def _flush_manifest(self) -> None:
        blob = json.dumps(self._manifest, sort_keys=True, indent=2)
        handle = tempfile.NamedTemporaryFile(
            mode="w", dir=self.root, suffix=".tmp", delete=False
        )
        try:
            with handle:
                handle.write(blob)
            os.replace(handle.name, self.root / self._MANIFEST)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise

    @property
    def meta(self) -> dict[str, Any]:
        """Episode-level metadata (shape, chunk size, progress flags)."""
        return dict(self._manifest["meta"])

    def update_meta(self, **entries: Any) -> None:
        """Merge JSON-serialisable entries into the episode metadata."""
        self._manifest["meta"].update(entries)
        self._flush_manifest()

    def completed(self, kind: str) -> list[int]:
        """Indices of the committed chunks of ``kind``, ascending."""
        return sorted(int(i) for i in self._manifest["chunks"].get(kind, []))

    # -- chunk shards --------------------------------------------------
    def _chunk_path(self, kind: str, index: int) -> Path:
        if "/" in kind or kind.startswith("."):
            raise ValueError(f"invalid chunk kind {kind!r}")
        return self.root / f"{kind}-{int(index):06d}.npy"

    def append_chunk(self, kind: str, index: int, array: np.ndarray) -> Path:
        """Commit one chunk shard (atomic write, then manifest update)."""
        path = self._chunk_path(kind, index)
        handle = tempfile.NamedTemporaryFile(
            dir=self.root, suffix=".tmp", delete=False
        )
        try:
            with handle:
                np.save(handle, np.ascontiguousarray(array))
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        recorded = self._manifest["chunks"].setdefault(kind, [])
        if int(index) not in recorded:
            recorded.append(int(index))
        self._flush_manifest()
        return path

    def read_chunk(self, kind: str, index: int) -> np.ndarray:
        """Load one committed chunk shard."""
        if int(index) not in self._manifest["chunks"].get(kind, []):
            raise KeyError(f"chunk {kind}-{index} is not committed")
        return np.load(self._chunk_path(kind, index))

    def iter_chunks(self, kind: str) -> Iterator[tuple[int, np.ndarray]]:
        """Yield ``(index, array)`` for every committed chunk, in order."""
        for index in self.completed(kind):
            yield index, self.read_chunk(kind, index)

    # -- carry-over state ----------------------------------------------
    def save_state(self, index: int, **arrays: np.ndarray) -> Path:
        """Snapshot named carry-over arrays at one chunk boundary."""
        path = self.root / f"carry-{int(index):06d}.npz"
        handle = tempfile.NamedTemporaryFile(
            dir=self.root, suffix=".tmp", delete=False
        )
        try:
            with handle:
                np.savez(handle, **arrays)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        recorded = self._manifest["chunks"].setdefault("carry", [])
        if int(index) not in recorded:
            recorded.append(int(index))
        self._flush_manifest()
        return path

    def load_state(self, index: int) -> dict[str, np.ndarray]:
        """Reload the carry-over snapshot of one chunk boundary."""
        if int(index) not in self._manifest["chunks"].get("carry", []):
            raise KeyError(f"no carry state committed for chunk {index}")
        with np.load(self.root / f"carry-{int(index):06d}.npz") as bundle:
            return {name: bundle[name] for name in bundle.files}

    # -- disk-backed full-horizon planes -------------------------------
    def create_plane(
        self, name: str, shape: tuple[int, ...], dtype: Any = np.int64
    ) -> np.ndarray:
        """Create (or reopen) a disk-backed plane of the full episode.

        The plane is a ``.npy`` memmap: writers fill it region by region
        without ever holding it on the heap, and readers slice windows
        out of it on demand.
        """
        path = self.root / f"{name}.plane.npy"
        if path.is_file():
            plane = open_memmap(path, mode="r+")
            if plane.shape == tuple(shape):
                return plane
            del plane
        return open_memmap(path, mode="w+", dtype=dtype, shape=tuple(shape))

    def open_plane(self, name: str) -> np.ndarray:
        """Open an existing disk-backed plane read-only."""
        return open_memmap(self.root / f"{name}.plane.npy", mode="r")

    def has_plane(self, name: str) -> bool:
        """Whether a disk-backed plane of that name exists."""
        return (self.root / f"{name}.plane.npy").is_file()

    # -- lifecycle -----------------------------------------------------
    def destroy(self) -> None:
        """Delete the episode directory and everything in it."""
        if not self.root.is_dir():
            return
        for entry in self.root.iterdir():
            try:
                entry.unlink()
            except OSError:
                continue
        try:
            self.root.rmdir()
        except OSError:
            pass
