"""Content-addressed on-disk cache for experiment results.

A full figure regeneration runs thousands of Monte-Carlo episodes; the
result, however, is a small JSON document that is a pure function of
*(experiment id, configuration, package version)*.  The cache stores each
:class:`~repro.sim.results.ExperimentResult` under the SHA-256 of that
key so repeat invocations (CLI re-runs, benchmark warm-ups, notebook
restarts) return in milliseconds instead of minutes.

Keying rules:

* the configuration enters the key as its canonical JSON form (sorted
  keys, no whitespace);
* execution-only settings that are proven not to affect the numbers —
  the ``engine`` choice, the ``workers`` count and the chain storage
  ``backend``, all bit-identical by construction — are stripped first,
  so a cached serial result satisfies a parallel re-run and vice versa;
* the package version is included, so upgrading the code invalidates
  every stale entry at once;
* anything that cannot be serialised deterministically (non-JSON keyword
  arguments) makes the call uncacheable rather than silently wrong.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Mapping

from .results import ExperimentResult

__all__ = [
    "EXECUTION_ONLY_KEYS",
    "default_cache_dir",
    "experiment_cache_key",
    "ResultCache",
]

#: Config keys that change how an experiment executes but never what it
#: computes (pinned by the engine/worker/backend equivalence test suites).
EXECUTION_ONLY_KEYS = ("engine", "workers", "backend")


def default_cache_dir() -> Path:
    """Default cache location (``$REPRO_MEC_CACHE`` overrides it)."""
    override = os.environ.get("REPRO_MEC_CACHE")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-mec" / "results"


def _package_version() -> str:
    # Imported lazily: ``repro/__init__`` imports the experiment registry,
    # which imports this module, so a top-level import would be circular.
    from .. import __version__

    return __version__


def experiment_cache_key(
    experiment_id: str,
    config: Mapping[str, Any] | None = None,
    *,
    extra: Mapping[str, Any] | None = None,
    version: str | None = None,
) -> str | None:
    """Stable content hash for one experiment invocation.

    Returns ``None`` when the invocation is not cacheable (some argument
    has no deterministic JSON form).
    """
    if not experiment_id:
        raise ValueError("experiment_id must be non-empty")
    payload = {
        "experiment_id": experiment_id,
        "config": {
            key: value
            for key, value in dict(config or {}).items()
            if key not in EXECUTION_ONLY_KEYS
        },
        "extra": dict(extra or {}),
        "version": version if version is not None else _package_version(),
    }
    try:
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError):
        return None
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """Directory of ``<key>.json`` files holding experiment results.

    The cache is safe against concurrent writers (entries are written to
    a temporary file and atomically renamed into place) and against
    corrupt entries (unreadable files count as misses and are rewritten).
    ``hits`` / ``misses`` counters let callers report cache behaviour.
    """

    def __init__(self, cache_dir: str | Path | None = None) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        """The on-disk path of a cache entry."""
        if not key:
            raise ValueError("key must be non-empty")
        return self.cache_dir / f"{key}.json"

    def get(self, key: str) -> ExperimentResult | None:
        """The cached result for ``key``, or ``None`` on a miss."""
        path = self.path_for(key)
        try:
            result = ExperimentResult.load(path)
        except OSError:
            self.misses += 1
            return None
        except Exception:
            # Unreadable or wrong-shape entry (truncated write, foreign
            # file, older schema): a miss, so the caller recomputes and
            # overwrites it rather than crashing on stale on-disk state.
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: ExperimentResult) -> Path:
        """Store ``result`` under ``key`` and return the entry path."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = json.dumps(result.to_dict(), indent=2, sort_keys=True)
        handle = tempfile.NamedTemporaryFile(
            mode="w", dir=path.parent, suffix=".tmp", delete=False
        )
        try:
            with handle:
                handle.write(blob)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        return path

    def clear(self) -> int:
        """Delete every entry; returns the number of files removed."""
        removed = 0
        if self.cache_dir.is_dir():
            for entry in self.cache_dir.glob("*.json"):
                entry.unlink(missing_ok=True)
                removed += 1
        return removed
