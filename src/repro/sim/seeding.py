"""Seeding discipline shared by the whole experiment stack.

Every piece of the reproduction that needs more than one random stream
derives them by *spawning children from a single*
:class:`numpy.random.SeedSequence` instead of doing seed arithmetic
(``seed + offset``).  Arithmetic creates overlapping streams across
series and experiments — run ``k`` of a ``seed=S`` sweep shares a master
seed with run ``k-1`` of a ``seed=S+1`` sweep — whereas spawned children
are pairwise independent by construction for every ``(seed, index)``
pair.

The helpers here are deliberately *stateless*: a fresh
:class:`~numpy.random.SeedSequence` is rebuilt from the entropy on every
call, so repeated calls (and calls made independently by parallel
workers) always produce the same children regardless of how often the
caller has spawned before.

Experiments additionally mix their identifier into the master entropy
(the ``key`` argument): two *different* experiments sharing the same
integer ``config.seed`` would otherwise spawn identical child streams.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = [
    "as_seed_sequence",
    "spawn_sequences",
    "spawn_sequences_range",
    "spawn_generators",
]


def _key_entropy(key: str) -> list[int]:
    """Stable 128-bit entropy words for a string key (SHA-256 based)."""
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return [
        int.from_bytes(digest[i : i + 4], "little") for i in range(0, 16, 4)
    ]


def as_seed_sequence(
    seed: int | np.random.SeedSequence, *, key: str | None = None
) -> np.random.SeedSequence:
    """A *fresh* :class:`~numpy.random.SeedSequence` for ``seed``.

    Passing an existing sequence returns an unspawned copy built from the
    same entropy and spawn key, so the caller's spawn counter never leaks
    into the children derived here (spawning is deterministic per call
    site, not per object history).

    ``key`` mixes a stable string (the experiment id) into the entropy so
    different experiments with the same integer seed derive disjoint
    stream families; it is only meaningful for integer master seeds —
    spawned children already carry their ancestry in the spawn key.
    """
    if isinstance(seed, np.random.SeedSequence):
        if key is not None:
            raise ValueError(
                "key mixing requires an integer master seed; spawned "
                "children are already experiment-scoped"
            )
        return np.random.SeedSequence(
            entropy=seed.entropy, spawn_key=seed.spawn_key
        )
    if key is not None:
        return np.random.SeedSequence([int(seed), *_key_entropy(key)])
    return np.random.SeedSequence(seed)


def spawn_sequences(
    seed: int | np.random.SeedSequence, n: int, *, key: str | None = None
) -> list[np.random.SeedSequence]:
    """The first ``n`` children of ``seed``, deterministically."""
    if n < 0:
        raise ValueError("n must be non-negative")
    return as_seed_sequence(seed, key=key).spawn(n)


def spawn_sequences_range(
    seed: int | np.random.SeedSequence, start: int, stop: int
) -> list[np.random.SeedSequence]:
    """Children ``start..stop`` of ``seed`` without materialising the rest.

    Equal to ``spawn_sequences(seed, stop)[start:stop]`` — numpy's
    ``spawn`` appends the child index to the parent's spawn key, so the
    children can be built directly — which lets a worker derive just its
    shard's generators out of a large run count.
    """
    if start < 0 or stop < start:
        raise ValueError("need 0 <= start <= stop")
    root = as_seed_sequence(seed)
    return [
        np.random.SeedSequence(
            entropy=root.entropy, spawn_key=(*root.spawn_key, index)
        )
        for index in range(start, stop)
    ]


def spawn_generators(
    seed: int | np.random.SeedSequence, n: int, *, key: str | None = None
) -> list[np.random.Generator]:
    """One independent generator per child of ``seed``."""
    return [
        np.random.default_rng(child) for child in spawn_sequences(seed, n, key=key)
    ]
