"""Monte-Carlo harness for the privacy game.

The paper averages its synthetic results over 1000 Monte-Carlo runs.  The
harness here owns seeding (each run gets an independent child generator
spawned from a single :class:`numpy.random.SeedSequence`) so experiments
are reproducible run-for-run regardless of execution order.

Two execution engines are provided:

* ``"batch"`` (default) — all runs of a configuration are played as
  ``(R, T)`` / ``(R, N, T)`` arrays through
  :meth:`~repro.core.game.PrivacyGame.run_batch`.  Because every run keeps
  its own child generator and the batched stages consume each generator in
  the scalar order, the results are bit-identical to the looped engine for
  the same master seed — just several times faster at paper scale.
* ``"loop"`` — the original one-episode-at-a-time path, kept as an escape
  hatch and as the reference for the golden-seed equivalence tests.

Orthogonally to the engine choice, ``workers=N`` shards the runs over a
process pool (see :mod:`repro.sim.parallel`): every worker respawns the
per-run child generators by index from the master seed and replays its
contiguous slice, so the concatenated result is independent of the worker
count — and therefore bit-identical to the serial path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..analysis.metrics import TrackingStatistics, aggregate_episodes
from ..core.game import BatchEpisodeResult, EpisodeResult, PrivacyGame
from .seeding import spawn_generators

__all__ = ["MonteCarloRunner", "run_game_monte_carlo", "ENGINES"]

#: Valid execution engines for :class:`MonteCarloRunner`.
ENGINES = ("batch", "loop")

UserProvider = Callable[[int, np.random.Generator], np.ndarray]
BackgroundProvider = Callable[[int, np.random.Generator], "np.ndarray | None"]


@dataclass
class MonteCarloRunner:
    """Runs a privacy game many times and aggregates the outcomes.

    Parameters
    ----------
    n_runs:
        Number of independent episodes.
    seed:
        Master seed (an integer or a :class:`~numpy.random.SeedSequence`
        child spawned by a higher layer); per-run generators are spawned
        from it.
    engine:
        ``"batch"`` (default) plays all runs as one array batch;
        ``"loop"`` plays them one at a time.  Both produce identical
        results for the same seed.
    workers:
        Number of worker processes the runs are sharded over.  ``1``
        (default) keeps the current serial path, ``0`` uses all CPU
        cores.  Any value produces bit-identical results.
    """

    n_runs: int
    seed: "int | np.random.SeedSequence" = 0
    engine: str = "batch"
    workers: int = 1

    def __post_init__(self) -> None:
        if self.n_runs < 1:
            raise ValueError("n_runs must be positive")
        if self.engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {self.engine!r}")
        if self.workers < 0:
            raise ValueError("workers must be non-negative (0 = all cores)")

    # ------------------------------------------------------------------
    def spawn_generators(self) -> list[np.random.Generator]:
        """The per-run child generators derived from the master seed."""
        return spawn_generators(self.seed, self.n_runs)

    def _effective_workers(self) -> int:
        """The resolved worker count, clamped to the number of runs."""
        from .parallel import resolve_workers

        return min(resolve_workers(self.workers), self.n_runs)

    def run(
        self,
        game: PrivacyGame,
        *,
        horizon: int | None = None,
        user_trajectory_provider: UserProvider | None = None,
        background_provider: BackgroundProvider | None = None,
    ) -> TrackingStatistics:
        """Run ``n_runs`` episodes and aggregate them.

        Exactly one of ``horizon`` (sample the user from the mobility model)
        or ``user_trajectory_provider`` (callable mapping run index and RNG
        to a fixed user trajectory, e.g. a taxi trace) must be supplied.
        """
        workers = self._effective_workers()
        if self.engine == "loop":
            if workers == 1:
                episodes = self.run_episodes(
                    game,
                    horizon=horizon,
                    user_trajectory_provider=user_trajectory_provider,
                    background_provider=background_provider,
                )
            else:
                episodes = self._episodes_parallel(
                    game,
                    workers,
                    horizon=horizon,
                    user_trajectory_provider=user_trajectory_provider,
                    background_provider=background_provider,
                )
            return aggregate_episodes(episodes)
        _validate_sources(horizon, user_trajectory_provider)
        providers_used = (
            user_trajectory_provider is not None or background_provider is not None
        )
        if not providers_used:
            return self._dispatch_batch(
                game, workers, None, horizon=horizon
            ).aggregate()
        rngs = self.spawn_generators()
        users, backgrounds = self._gather_provider_outputs(
            rngs, user_trajectory_provider, background_provider
        )
        stacked_users = _try_stack(users)
        stacked_backgrounds = _try_stack(backgrounds)
        batchable = (users is None or stacked_users is not None) and (
            backgrounds is None or stacked_backgrounds is not None
        )
        if batchable:
            return self._dispatch_batch(
                game,
                workers,
                rngs,
                horizon=horizon if stacked_users is None else None,
                user_trajectories=stacked_users,
                background_trajectories=stacked_backgrounds,
            ).aggregate()
        # Provider outputs cannot be stacked into one batch (ragged shapes
        # or a mix of arrays and None): finish with the looped game path,
        # reusing the generators and outputs already drawn so providers are
        # invoked exactly once and the random streams match a pure loop.
        if workers > 1:
            from .parallel import run_episodes_sharded

            episodes = run_episodes_sharded(
                game,
                self.seed,
                self.n_runs,
                workers,
                rngs=rngs,
                horizon=horizon if users is None else None,
                user_trajectories=users,
                background_trajectories=backgrounds,
            )
            return aggregate_episodes(episodes)
        episodes = [
            game.run_episode(
                rng,
                horizon=horizon if users is None else None,
                user_trajectory=None if users is None else users[run],
                background_trajectories=(
                    None if backgrounds is None else backgrounds[run]
                ),
            )
            for run, rng in enumerate(rngs)
        ]
        return aggregate_episodes(episodes)

    def run_batch(
        self,
        game: PrivacyGame,
        *,
        horizon: int | None = None,
        user_trajectory_provider: UserProvider | None = None,
        background_provider: BackgroundProvider | None = None,
    ) -> BatchEpisodeResult:
        """Run all episodes as one array batch and return the raw result.

        Provider callables are invoked once per run with that run's
        generator (preserving the looped engine's random streams) and
        their outputs stacked into the batch tensors; outputs that cannot
        be stacked (ragged shapes) raise ``ValueError`` — use :meth:`run`,
        which falls back to the looped game path for that case.
        """
        _validate_sources(horizon, user_trajectory_provider)
        providers_used = (
            user_trajectory_provider is not None or background_provider is not None
        )
        workers = self._effective_workers()
        if not providers_used:
            return self._dispatch_batch(game, workers, None, horizon=horizon)
        rngs = self.spawn_generators()
        users, backgrounds = self._gather_provider_outputs(
            rngs, user_trajectory_provider, background_provider
        )
        stacked_users = _try_stack(users)
        stacked_backgrounds = _try_stack(backgrounds)
        if users is not None and stacked_users is None:
            raise ValueError("user trajectories have inconsistent shapes")
        if backgrounds is not None and stacked_backgrounds is None:
            raise ValueError(
                "background trajectories have inconsistent shapes or mix "
                "arrays with None"
            )
        return self._dispatch_batch(
            game,
            workers,
            rngs,
            horizon=horizon if stacked_users is None else None,
            user_trajectories=stacked_users,
            background_trajectories=stacked_backgrounds,
        )

    def _dispatch_batch(
        self,
        game: PrivacyGame,
        workers: int,
        rngs: "list[np.random.Generator] | None",
        *,
        horizon: int | None,
        user_trajectories: np.ndarray | None = None,
        background_trajectories: np.ndarray | None = None,
    ) -> BatchEpisodeResult:
        """The single dispatch point for batch execution, sharded or not.

        ``rngs`` is ``None`` when no provider touched the generators:
        workers then derive their shard's children by index from the
        master seed (the serial path spawns them here); otherwise the
        provider-consumed generator states are shipped as-is.
        """
        if workers > 1:
            from .parallel import run_batch_sharded

            return run_batch_sharded(
                game,
                self.seed,
                self.n_runs,
                workers,
                rngs=rngs,
                horizon=horizon,
                user_trajectories=user_trajectories,
                background_trajectories=background_trajectories,
            )
        if rngs is None:
            rngs = self.spawn_generators()
        return game.run_batch(
            rngs,
            horizon=horizon,
            user_trajectories=user_trajectories,
            background_trajectories=background_trajectories,
        )

    def run_episodes(
        self,
        game: PrivacyGame,
        *,
        horizon: int | None = None,
        user_trajectory_provider: UserProvider | None = None,
        background_provider: BackgroundProvider | None = None,
    ) -> list[EpisodeResult]:
        """Run the episodes one at a time and return them without aggregation."""
        _validate_sources(horizon, user_trajectory_provider)
        episodes: list[EpisodeResult] = []
        for run_index, rng in enumerate(self.spawn_generators()):
            user_trajectory = None
            if user_trajectory_provider is not None:
                user_trajectory = user_trajectory_provider(run_index, rng)
            background = None
            if background_provider is not None:
                background = background_provider(run_index, rng)
            episodes.append(
                game.run_episode(
                    rng,
                    horizon=horizon if user_trajectory is None else None,
                    user_trajectory=user_trajectory,
                    background_trajectories=background,
                )
            )
        return episodes

    # ------------------------------------------------------------------
    def _episodes_parallel(
        self,
        game: PrivacyGame,
        workers: int,
        *,
        horizon: int | None,
        user_trajectory_provider: UserProvider | None,
        background_provider: BackgroundProvider | None,
    ) -> list[EpisodeResult]:
        """The looped engine sharded over a process pool, in run order."""
        from .parallel import run_episodes_sharded

        _validate_sources(horizon, user_trajectory_provider)
        providers_used = (
            user_trajectory_provider is not None or background_provider is not None
        )
        if not providers_used:
            return run_episodes_sharded(
                game, self.seed, self.n_runs, workers, horizon=horizon
            )
        rngs = self.spawn_generators()
        users, backgrounds = self._gather_provider_outputs(
            rngs, user_trajectory_provider, background_provider
        )
        return run_episodes_sharded(
            game,
            self.seed,
            self.n_runs,
            workers,
            rngs=rngs,
            horizon=horizon if users is None else None,
            user_trajectories=users,
            background_trajectories=backgrounds,
        )

    def _gather_provider_outputs(
        self,
        rngs: Sequence[np.random.Generator],
        user_trajectory_provider: UserProvider | None,
        background_provider: BackgroundProvider | None,
    ) -> tuple[list[np.ndarray] | None, list[np.ndarray | None] | None]:
        """Invoke the providers once per run, in the looped engine's order.

        Each run's generator sees its user draw before its background
        draw, exactly as in :meth:`run_episodes`, so the collected outputs
        are valid for either execution path.
        """
        users = None
        if user_trajectory_provider is not None:
            users = [
                np.asarray(user_trajectory_provider(run, rngs[run]), dtype=np.int64)
                for run in range(self.n_runs)
            ]
        backgrounds = None
        if background_provider is not None:
            backgrounds = [
                background_provider(run, rngs[run]) for run in range(self.n_runs)
            ]
            if all(item is None for item in backgrounds):
                backgrounds = None
        return users, backgrounds


def _validate_sources(horizon, user_trajectory_provider) -> None:
    if (horizon is None) == (user_trajectory_provider is None):
        raise ValueError("provide exactly one of horizon or user_trajectory_provider")


def _try_stack(arrays: Sequence[np.ndarray | None] | None) -> np.ndarray | None:
    """Stack per-run provider outputs, or ``None`` if they cannot batch."""
    if arrays is None:
        return None
    if any(item is None for item in arrays):
        return None
    coerced = [np.asarray(item, dtype=np.int64) for item in arrays]
    if len({item.shape for item in coerced}) != 1:
        return None
    return np.stack(coerced, axis=0)


def run_game_monte_carlo(
    game: PrivacyGame,
    *,
    n_runs: int,
    horizon: int,
    seed: int = 0,
    engine: str = "batch",
    workers: int = 1,
) -> TrackingStatistics:
    """Convenience wrapper: sample-user episodes with default providers."""
    runner = MonteCarloRunner(n_runs=n_runs, seed=seed, engine=engine, workers=workers)
    return runner.run(game, horizon=horizon)
