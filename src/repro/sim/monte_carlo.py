"""Monte-Carlo harness for the privacy game.

The paper averages its synthetic results over 1000 Monte-Carlo runs.  The
harness here owns seeding (each run gets an independent child generator
spawned from a single :class:`numpy.random.SeedSequence`) so experiments
are reproducible run-for-run regardless of execution order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..analysis.metrics import TrackingStatistics, aggregate_episodes
from ..core.game import EpisodeResult, PrivacyGame

__all__ = ["MonteCarloRunner", "run_game_monte_carlo"]


@dataclass
class MonteCarloRunner:
    """Runs a privacy game many times and aggregates the outcomes.

    Parameters
    ----------
    n_runs:
        Number of independent episodes.
    seed:
        Master seed; per-run generators are spawned from it.
    """

    n_runs: int
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_runs < 1:
            raise ValueError("n_runs must be positive")

    def run(
        self,
        game: PrivacyGame,
        *,
        horizon: int | None = None,
        user_trajectory_provider: Callable[[int, np.random.Generator], np.ndarray]
        | None = None,
        background_provider: Callable[[int, np.random.Generator], np.ndarray | None]
        | None = None,
    ) -> TrackingStatistics:
        """Run ``n_runs`` episodes and aggregate them.

        Exactly one of ``horizon`` (sample the user from the mobility model)
        or ``user_trajectory_provider`` (callable mapping run index and RNG
        to a fixed user trajectory, e.g. a taxi trace) must be supplied.
        """
        episodes = self.run_episodes(
            game,
            horizon=horizon,
            user_trajectory_provider=user_trajectory_provider,
            background_provider=background_provider,
        )
        return aggregate_episodes(episodes)

    def run_episodes(
        self,
        game: PrivacyGame,
        *,
        horizon: int | None = None,
        user_trajectory_provider: Callable[[int, np.random.Generator], np.ndarray]
        | None = None,
        background_provider: Callable[[int, np.random.Generator], np.ndarray | None]
        | None = None,
    ) -> list[EpisodeResult]:
        """Run the episodes and return them without aggregation."""
        if (horizon is None) == (user_trajectory_provider is None):
            raise ValueError(
                "provide exactly one of horizon or user_trajectory_provider"
            )
        seed_sequence = np.random.SeedSequence(self.seed)
        children = seed_sequence.spawn(self.n_runs)
        episodes: list[EpisodeResult] = []
        for run_index, child in enumerate(children):
            rng = np.random.default_rng(child)
            user_trajectory = None
            if user_trajectory_provider is not None:
                user_trajectory = user_trajectory_provider(run_index, rng)
            background = None
            if background_provider is not None:
                background = background_provider(run_index, rng)
            episodes.append(
                game.run_episode(
                    rng,
                    horizon=horizon if user_trajectory is None else None,
                    user_trajectory=user_trajectory,
                    background_trajectories=background,
                )
            )
        return episodes


def run_game_monte_carlo(
    game: PrivacyGame,
    *,
    n_runs: int,
    horizon: int,
    seed: int = 0,
) -> TrackingStatistics:
    """Convenience wrapper: sample-user episodes with default providers."""
    runner = MonteCarloRunner(n_runs=n_runs, seed=seed)
    return runner.run(game, horizon=horizon)
