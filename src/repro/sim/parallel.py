"""Parallel execution layer for the Monte-Carlo harness.

Two levels of parallelism, both *bit-identical* to their serial
counterparts:

* **Run sharding** — the ``R`` runs of one configuration are split into
  contiguous worker shards.  Each worker respawns the full list of
  per-run child seed sequences from the one master seed (children are
  derived by index, so they do not depend on the worker count or on which
  worker executes them), takes its slice, replays
  :meth:`~repro.core.game.PrivacyGame.run_batch` (or the looped episode
  path) on that slice, and the parent concatenates the shard results in
  run order.  Because every run keeps its own child generator, the
  concatenation equals the single-process result bit for bit.
* **Grid mapping** — :func:`parallel_map` distributes independent
  experiment points (one ``(strategy, model, budget)`` combination each)
  over a process pool, used by the sweeps and ablations so whole figures
  scale across cores.

Worker payloads carry only picklable data: games, chains, strategies and
detectors are plain objects, and provider callables are never shipped —
the parent invokes them once per run (preserving the serial random
streams) and sends the resulting arrays.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, Sequence, TypeVar

import numpy as np

from ..core.game import BatchEpisodeResult, EpisodeResult, PrivacyGame
from ..core.eavesdropper.detector import BatchDetectionOutcome
from .seeding import spawn_sequences_range

__all__ = [
    "resolve_workers",
    "shard_slices",
    "concatenate_batches",
    "run_batch_sharded",
    "run_episodes_sharded",
    "parallel_map",
    "get_shared",
]

_T = TypeVar("_T")
_R = TypeVar("_R")


def resolve_workers(workers: int) -> int:
    """Normalise a ``workers`` request: ``0`` means all CPU cores."""
    if workers < 0:
        raise ValueError("workers must be non-negative (0 = all cores)")
    if workers == 0:
        return os.cpu_count() or 1
    return workers


def shard_slices(n_items: int, n_shards: int) -> list[slice]:
    """Split ``n_items`` into at most ``n_shards`` contiguous slices.

    Shard sizes differ by at most one and empty shards are dropped, so
    the slices always cover exactly ``range(n_items)`` in order.
    """
    if n_items < 1:
        raise ValueError("n_items must be positive")
    if n_shards < 1:
        raise ValueError("n_shards must be positive")
    n_shards = min(n_shards, n_items)
    base, extra = divmod(n_items, n_shards)
    slices = []
    start = 0
    for shard in range(n_shards):
        stop = start + base + (1 if shard < extra else 0)
        slices.append(slice(start, stop))
        start = stop
    return slices


def concatenate_batches(batches: Sequence[BatchEpisodeResult]) -> BatchEpisodeResult:
    """Concatenate shard :class:`BatchEpisodeResult`s along the run axis."""
    if not batches:
        raise ValueError("need at least one shard result")
    if len(batches) == 1:
        return batches[0]
    detection = BatchDetectionOutcome(
        chosen_indices=np.concatenate([b.detection.chosen_indices for b in batches]),
        scores=np.concatenate([b.detection.scores for b in batches], axis=0),
        candidate_indices=tuple(
            indices for b in batches for indices in b.detection.candidate_indices
        ),
    )
    return BatchEpisodeResult(
        user_trajectories=np.concatenate(
            [b.user_trajectories for b in batches], axis=0
        ),
        chaff_trajectories=np.concatenate(
            [b.chaff_trajectories for b in batches], axis=0
        ),
        observed_trajectories=np.concatenate(
            [b.observed_trajectories for b in batches], axis=0
        ),
        detection=detection,
        tracked_per_slot=np.concatenate([b.tracked_per_slot for b in batches], axis=0),
        detected_user=np.concatenate([b.detected_user for b in batches]),
    )


# ----------------------------------------------------------------------
# Worker entry points (must be module-level for pickling).


def _shard_rngs(task) -> list[np.random.Generator]:
    """The shard's per-run generators.

    When the parent did not touch the generators (no providers), workers
    respawn them by index from the master seed — the cheap path that makes
    results worker-count independent by construction.  When providers
    already drew from the generators, the parent ships the
    partially-consumed generator objects instead, preserving the exact
    serial stream position.
    """
    _, seed, start, stop, rngs, _, _, _ = task
    if rngs is not None:
        return list(rngs)
    return [
        np.random.default_rng(child)
        for child in spawn_sequences_range(seed, start, stop)
    ]


def _batch_shard_worker(task) -> BatchEpisodeResult:
    """Replay ``run_batch`` on one contiguous shard of the runs."""
    game, _, _, _, _, horizon, users, backgrounds = task
    return game.run_batch(
        _shard_rngs(task),
        horizon=horizon,
        user_trajectories=users,
        background_trajectories=backgrounds,
    )


def _episode_shard_worker(task) -> list[EpisodeResult]:
    """Replay the looped episode path on one contiguous shard of the runs."""
    game, _, _, _, _, horizon, users, backgrounds = task
    episodes = []
    for offset, rng in enumerate(_shard_rngs(task)):
        user = None if users is None else users[offset]
        background = None if backgrounds is None else backgrounds[offset]
        episodes.append(
            game.run_episode(
                rng,
                horizon=horizon if user is None else None,
                user_trajectory=user,
                background_trajectories=background,
            )
        )
    return episodes


def _shard_tasks(
    game: PrivacyGame,
    seed,
    n_runs: int,
    workers: int,
    *,
    rngs,
    horizon: int | None,
    users,
    backgrounds,
) -> list[tuple]:
    tasks = []
    for shard in shard_slices(n_runs, workers):
        tasks.append(
            (
                game,
                seed,
                shard.start,
                shard.stop,
                None if rngs is None else rngs[shard],
                horizon,
                None if users is None else users[shard],
                None if backgrounds is None else backgrounds[shard],
            )
        )
    return tasks


def run_batch_sharded(
    game: PrivacyGame,
    seed,
    n_runs: int,
    workers: int,
    *,
    rngs: Sequence[np.random.Generator] | None = None,
    horizon: int | None = None,
    user_trajectories: np.ndarray | None = None,
    background_trajectories: np.ndarray | None = None,
) -> BatchEpisodeResult:
    """``PrivacyGame.run_batch`` over a process pool, bit-identical to serial.

    ``rngs`` carries the parent's per-run generators when their state has
    already advanced (provider draws); otherwise workers respawn children
    from ``seed`` by index.
    """
    workers = min(resolve_workers(workers), n_runs)
    tasks = _shard_tasks(
        game,
        seed,
        n_runs,
        workers,
        rngs=rngs,
        horizon=horizon,
        users=user_trajectories,
        backgrounds=background_trajectories,
    )
    if len(tasks) == 1:
        shards = [_batch_shard_worker(task) for task in tasks]
    else:
        with ProcessPoolExecutor(max_workers=len(tasks)) as pool:
            shards = list(pool.map(_batch_shard_worker, tasks))
    return concatenate_batches(shards)


def run_episodes_sharded(
    game: PrivacyGame,
    seed,
    n_runs: int,
    workers: int,
    *,
    rngs: Sequence[np.random.Generator] | None = None,
    horizon: int | None = None,
    user_trajectories: "Sequence[np.ndarray] | None" = None,
    background_trajectories: "Sequence[np.ndarray | None] | None" = None,
) -> list[EpisodeResult]:
    """The looped episode path over a process pool, in run order.

    Unlike :func:`run_batch_sharded` the per-run trajectories may be
    ragged (a plain list), which is what the harness falls back to when
    provider outputs cannot be stacked.
    """
    workers = min(resolve_workers(workers), n_runs)
    tasks = _shard_tasks(
        game,
        seed,
        n_runs,
        workers,
        rngs=rngs,
        horizon=horizon,
        users=user_trajectories,
        backgrounds=background_trajectories,
    )
    if len(tasks) == 1:
        shards = [_episode_shard_worker(task) for task in tasks]
    else:
        with ProcessPoolExecutor(max_workers=len(tasks)) as pool:
            shards = list(pool.map(_episode_shard_worker, tasks))
    return [episode for shard in shards for episode in shard]


# The one worker-side payload shipped outside the task tuples.  Shard
# workers that map over many tasks sharing one big immutable object (a
# FleetSimulation with its hop matrix, say) would otherwise pickle that
# object into every task; parallel_map's ``shared`` channel ships it
# once per worker instead — fork-inherited where the platform allows,
# via the pool initializer elsewhere — and :func:`get_shared` reads it
# back inside the worker function.
_SHARED: Any = None


def _set_shared(value: Any) -> None:
    global _SHARED
    _SHARED = value


def get_shared() -> Any:
    """The object the current :func:`parallel_map` call shipped to workers."""
    return _SHARED


def parallel_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    *,
    workers: int = 1,
    shared: Any = None,
    recorder: Any = None,
) -> list[_R]:
    """Map ``fn`` over ``items``, optionally across a process pool.

    Results come back in input order.  ``workers=1`` runs the plain
    serial loop (no pool, no pickling); ``workers=0`` uses all cores.
    ``fn`` and the items must be picklable when ``workers != 1`` — the
    experiment layer passes module-level point functions and plain
    (chain, strategy, detector, seed) payloads.

    ``shared`` ships one additional object to every worker *once* (not
    per task): on fork platforms the pool's children inherit it with the
    process image, elsewhere the pool initializer delivers one pickled
    copy per worker.  Workers read it back with :func:`get_shared`; the
    serial path binds it around the loop, so ``fn`` is oblivious to the
    worker count.

    ``recorder`` (a :class:`repro.telemetry.Recorder`) attributes the
    map to the parent trace: one ``parallel/map`` span over the whole
    call plus task/worker counters.  Worker-side telemetry travels back
    through the results — shard workers that record locally return their
    recorder state for the caller to merge with worker attribution.
    """
    items = list(items)
    workers = min(resolve_workers(workers), max(len(items), 1))
    if recorder is not None and recorder.enabled:
        recorder.counter("parallel/maps")
        recorder.counter("parallel/tasks", len(items))
        recorder.gauge("parallel/workers", workers)
        with recorder.span("parallel/map", tasks=len(items), workers=workers):
            return parallel_map(fn, items, workers=workers, shared=shared)
    if workers == 1 or len(items) <= 1:
        if shared is None:
            return [fn(item) for item in items]
        previous = _SHARED
        _set_shared(shared)
        try:
            return [fn(item) for item in items]
        finally:
            _set_shared(previous)
    if shared is None:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, items))
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platform without fork
        context = None
    previous = _SHARED
    _set_shared(shared)
    try:
        if context is not None:
            with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
                return list(pool.map(fn, items))
        with ProcessPoolExecutor(  # pragma: no cover - platform without fork
            max_workers=workers, initializer=_set_shared, initargs=(shared,)
        ) as pool:
            return list(pool.map(fn, items))
    finally:
        _set_shared(previous)
