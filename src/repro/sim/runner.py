"""High-level sweep runner: evaluate many strategies against one model.

The experiment modules (one per paper figure) compose this runner with the
appropriate mobility models, detectors and chaff budgets; it factors out
the common "for each strategy, Monte-Carlo the game and collect the
per-slot accuracy curve" loop of Figs. 5 and 7.

Each series gets its own child :class:`~numpy.random.SeedSequence`
spawned from the sweep's master seed (never ``seed + offset`` arithmetic,
which would overlap streams across sweeps), and the independent series
points can be mapped over a process pool with ``workers``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..analysis.metrics import TrackingStatistics
from ..core.eavesdropper.detector import TrajectoryDetector
from ..core.game import PrivacyGame
from ..core.strategies.base import ChaffStrategy, get_strategy
from .monte_carlo import MonteCarloRunner
from .parallel import parallel_map
from .results import SeriesResult
from .seeding import spawn_sequences

__all__ = ["StrategySweep", "sweep_strategies"]


@dataclass(frozen=True)
class StrategySweep:
    """Result of sweeping several strategies against one mobility model."""

    model_label: str
    statistics: dict[str, TrackingStatistics]

    def series(self) -> list[SeriesResult]:
        """Per-slot accuracy curves as :class:`SeriesResult` objects."""
        out = []
        for label, stats in self.statistics.items():
            out.append(
                SeriesResult.from_array(
                    label,
                    stats.per_slot_accuracy,
                    index=list(range(1, stats.horizon + 1)),
                    tracking_accuracy=stats.tracking_accuracy,
                    detection_accuracy=stats.detection_accuracy,
                    n_episodes=stats.n_episodes,
                )
            )
        return out


def _sweep_point(task) -> TrackingStatistics:
    """Evaluate one (strategy, N) series; module-level so pools can pickle it."""
    chain, detector, strategy, n_services, horizon, n_runs, child, engine, workers = (
        task
    )
    game = PrivacyGame(chain, strategy, detector, n_services=n_services)
    runner = MonteCarloRunner(
        n_runs=n_runs, seed=child, engine=engine, workers=workers
    )
    return runner.run(game, horizon=horizon)


def sweep_strategies(
    chain,
    detector: TrajectoryDetector,
    strategy_specs: Mapping[str, tuple[ChaffStrategy | str, int]],
    *,
    horizon: int,
    n_runs: int,
    seed: int | np.random.SeedSequence,
    model_label: str = "model",
    engine: str = "batch",
    workers: int = 1,
) -> StrategySweep:
    """Evaluate several (strategy, N) combinations against one model.

    Parameters
    ----------
    chain:
        The user mobility model.
    detector:
        The eavesdropper's detector.
    strategy_specs:
        Mapping from series label to ``(strategy, n_services)``; the
        strategy may be given by name (resolved through the registry) or
        as an instance.
    horizon, n_runs, seed:
        Monte-Carlo parameters.  Each series runs on its own child
        sequence spawned from ``seed``, so series streams never overlap —
        within this sweep or with any other experiment.
    engine:
        Monte-Carlo execution engine (``"batch"`` or ``"loop"``); both
        produce identical statistics for the same seed.
    workers:
        Worker processes (``0`` = all cores).  With several series the
        independent points are mapped over the pool; a single series is
        instead sharded run-wise inside its Monte-Carlo runner.  Results
        are bit-identical for any value.
    """
    labels = list(strategy_specs)
    children = spawn_sequences(seed, len(labels))
    # One series cannot use grid parallelism, so hand the workers to the
    # run-sharding layer instead; with several series the grid pool owns
    # the processes and every point stays serial inside.
    point_workers = workers if len(labels) == 1 else 1
    tasks = []
    for child, (label, (strategy_spec, n_services)) in zip(
        children, strategy_specs.items(), strict=True
    ):
        strategy = (
            get_strategy(strategy_spec)
            if isinstance(strategy_spec, str)
            else strategy_spec
        )
        tasks.append(
            (
                chain,
                detector,
                strategy,
                n_services,
                horizon,
                n_runs,
                child,
                engine,
                point_workers,
            )
        )
    results = parallel_map(
        _sweep_point, tasks, workers=1 if len(labels) == 1 else workers
    )
    statistics = dict(zip(labels, results, strict=True))
    return StrategySweep(model_label=model_label, statistics=statistics)
