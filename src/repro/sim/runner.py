"""High-level sweep runner: evaluate many strategies against one model.

The experiment modules (one per paper figure) compose this runner with the
appropriate mobility models, detectors and chaff budgets; it factors out
the common "for each strategy, Monte-Carlo the game and collect the
per-slot accuracy curve" loop of Figs. 5 and 7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..analysis.metrics import TrackingStatistics
from ..core.eavesdropper.detector import TrajectoryDetector
from ..core.game import PrivacyGame
from ..core.strategies.base import ChaffStrategy, get_strategy
from ..mobility.markov import MarkovChain
from .monte_carlo import MonteCarloRunner
from .results import SeriesResult

__all__ = ["StrategySweep", "sweep_strategies"]


@dataclass(frozen=True)
class StrategySweep:
    """Result of sweeping several strategies against one mobility model."""

    model_label: str
    statistics: dict[str, TrackingStatistics]

    def series(self) -> list[SeriesResult]:
        """Per-slot accuracy curves as :class:`SeriesResult` objects."""
        out = []
        for label, stats in self.statistics.items():
            out.append(
                SeriesResult.from_array(
                    label,
                    stats.per_slot_accuracy,
                    index=list(range(1, stats.horizon + 1)),
                    tracking_accuracy=stats.tracking_accuracy,
                    detection_accuracy=stats.detection_accuracy,
                    n_episodes=stats.n_episodes,
                )
            )
        return out


def sweep_strategies(
    chain: MarkovChain,
    detector: TrajectoryDetector,
    strategy_specs: Mapping[str, tuple[ChaffStrategy | str, int]],
    *,
    horizon: int,
    n_runs: int,
    seed: int,
    model_label: str = "model",
    engine: str = "batch",
) -> StrategySweep:
    """Evaluate several (strategy, N) combinations against one model.

    Parameters
    ----------
    chain:
        The user mobility model.
    detector:
        The eavesdropper's detector.
    strategy_specs:
        Mapping from series label to ``(strategy, n_services)``; the
        strategy may be given by name (resolved through the registry) or
        as an instance.
    horizon, n_runs, seed:
        Monte-Carlo parameters.
    engine:
        Monte-Carlo execution engine (``"batch"`` or ``"loop"``); both
        produce identical statistics for the same seed.
    """
    statistics: dict[str, TrackingStatistics] = {}
    for offset, (label, (strategy_spec, n_services)) in enumerate(
        strategy_specs.items()
    ):
        strategy = (
            get_strategy(strategy_spec)
            if isinstance(strategy_spec, str)
            else strategy_spec
        )
        game = PrivacyGame(chain, strategy, detector, n_services=n_services)
        runner = MonteCarloRunner(n_runs=n_runs, seed=seed + offset, engine=engine)
        statistics[label] = runner.run(game, horizon=horizon)
    return StrategySweep(model_label=model_label, statistics=statistics)
