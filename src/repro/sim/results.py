"""Result containers with JSON (de)serialisation.

Every experiment module returns one of these containers so that the
benchmark harness, the CLI and EXPERIMENTS.md all consume the same
structures.  Results are intentionally plain: nested dicts of floats and
lists, easily diffed against the paper's reported numbers.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

__all__ = ["SeriesResult", "ExperimentResult", "to_jsonable"]


def to_jsonable(value: Any) -> Any:
    """Recursively convert numpy scalars/arrays into JSON-friendly types."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, dict):
        return {str(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    return value


@dataclass(frozen=True)
class SeriesResult:
    """A single named series (one curve or bar group of a figure).

    Attributes
    ----------
    label:
        Legend label, e.g. ``"OO (N = 2)"``.
    values:
        The y-values of the series.
    index:
        The x-values (time slots, user ids, cell ids, ...); optional.
    metadata:
        Free-form extras (e.g. the strategy name and ``N`` used).
    """

    label: str
    values: tuple[float, ...]
    index: tuple[float, ...] | None = None
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.label:
            raise ValueError("label must be non-empty")
        if self.index is not None and len(self.index) != len(self.values):
            raise ValueError("index and values must have equal length")

    @classmethod
    def from_array(
        cls,
        label: str,
        values: np.ndarray | list[float],
        *,
        index: np.ndarray | list[float] | None = None,
        **metadata: Any,
    ) -> "SeriesResult":
        """Build a series from array-likes."""
        values_tuple = tuple(float(v) for v in np.asarray(values).ravel())
        index_tuple = (
            tuple(float(v) for v in np.asarray(index).ravel())
            if index is not None
            else None
        )
        return cls(
            label=label, values=values_tuple, index=index_tuple, metadata=dict(metadata)
        )

    def final_value(self) -> float:
        """Last value of the series (e.g. accuracy at the final slot)."""
        return self.values[-1]

    def mean_value(self) -> float:
        """Mean of the series values."""
        return float(np.mean(self.values))

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly dict form."""
        return to_jsonable(
            {
                "label": self.label,
                "values": list(self.values),
                "index": list(self.index) if self.index is not None else None,
                "metadata": self.metadata,
            }
        )

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SeriesResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            label=data["label"],
            values=tuple(float(v) for v in data["values"]),
            index=(
                tuple(float(v) for v in data["index"])
                if data.get("index") is not None
                else None
            ),
            metadata=dict(data.get("metadata", {})),
        )


@dataclass(frozen=True)
class ExperimentResult:
    """The full output of one experiment (one paper figure or table).

    Attributes
    ----------
    experiment_id:
        Identifier such as ``"fig5"``.
    description:
        One-line description of what the experiment reproduces.
    groups:
        Mapping from group name (e.g. mobility-model label or user id) to
        the list of series in that group.
    scalars:
        Headline scalar outputs (e.g. the KL skewness table).
    config:
        The configuration dict the experiment ran with.
    """

    experiment_id: str
    description: str
    groups: dict[str, list[SeriesResult]] = field(default_factory=dict)
    scalars: dict[str, float] = field(default_factory=dict)
    config: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.experiment_id:
            raise ValueError("experiment_id must be non-empty")

    def series(self, group: str, label: str) -> SeriesResult:
        """Look up a series by group and label."""
        for candidate in self.groups.get(group, []):
            if candidate.label == label:
                return candidate
        raise KeyError(f"series {label!r} not found in group {group!r}")

    def group_labels(self, group: str) -> list[str]:
        """Labels of all series in a group."""
        return [series.label for series in self.groups.get(group, [])]

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly dict form."""
        return to_jsonable(
            {
                "experiment_id": self.experiment_id,
                "description": self.description,
                "groups": {
                    name: [series.to_dict() for series in series_list]
                    for name, series_list in self.groups.items()
                },
                "scalars": self.scalars,
                "config": self.config,
            }
        )

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ExperimentResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            experiment_id=data["experiment_id"],
            description=data.get("description", ""),
            groups={
                name: [SeriesResult.from_dict(item) for item in series_list]
                for name, series_list in data.get("groups", {}).items()
            },
            scalars={key: float(v) for key, v in data.get("scalars", {}).items()},
            config=dict(data.get("config", {})),
        )

    def save(self, path: str | Path) -> Path:
        """Write the result to a JSON file and return the path."""
        destination = Path(path)
        destination.parent.mkdir(parents=True, exist_ok=True)
        destination.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True))
        return destination

    @classmethod
    def load(cls, path: str | Path) -> "ExperimentResult":
        """Read a result previously written by :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text()))

    def summary_lines(self) -> list[str]:
        """Human-readable summary, one line per series (for the CLI)."""
        lines = [f"[{self.experiment_id}] {self.description}"]
        for scalar, value in sorted(self.scalars.items()):
            lines.append(f"  {scalar} = {value:.4g}")
        for group, series_list in self.groups.items():
            lines.append(f"  group: {group}")
            for series in series_list:
                lines.append(
                    f"    {series.label}: mean={series.mean_value():.4f} "
                    f"final={series.final_value():.4f} (n={len(series.values)})"
                )
        return lines
