"""Simulation harness: configs, Monte-Carlo runner and result containers."""

from .config import SyntheticExperimentConfig, TraceExperimentConfig
from .monte_carlo import MonteCarloRunner, run_game_monte_carlo
from .results import ExperimentResult, SeriesResult, to_jsonable
from .runner import StrategySweep, sweep_strategies

__all__ = [
    "SyntheticExperimentConfig",
    "TraceExperimentConfig",
    "MonteCarloRunner",
    "run_game_monte_carlo",
    "ExperimentResult",
    "SeriesResult",
    "to_jsonable",
    "StrategySweep",
    "sweep_strategies",
]
