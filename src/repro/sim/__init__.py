"""Simulation harness: configs, Monte-Carlo runner, parallel execution,
result containers and the on-disk result cache."""

from .cache import ResultCache, default_cache_dir, experiment_cache_key
from .config import (
    AdversaryExperimentConfig,
    DynamicExperimentConfig,
    FleetExperimentConfig,
    SyntheticExperimentConfig,
    TraceExperimentConfig,
)
from .monte_carlo import MonteCarloRunner, run_game_monte_carlo
from .parallel import parallel_map, resolve_workers, shard_slices
from .results import ExperimentResult, SeriesResult, to_jsonable
from .runner import StrategySweep, sweep_strategies
from .seeding import (
    as_seed_sequence,
    spawn_generators,
    spawn_sequences,
    spawn_sequences_range,
)

__all__ = [
    "AdversaryExperimentConfig",
    "DynamicExperimentConfig",
    "FleetExperimentConfig",
    "SyntheticExperimentConfig",
    "TraceExperimentConfig",
    "MonteCarloRunner",
    "run_game_monte_carlo",
    "ExperimentResult",
    "SeriesResult",
    "to_jsonable",
    "StrategySweep",
    "sweep_strategies",
    "ResultCache",
    "default_cache_dir",
    "experiment_cache_key",
    "parallel_map",
    "resolve_workers",
    "shard_slices",
    "as_seed_sequence",
    "spawn_generators",
    "spawn_sequences",
    "spawn_sequences_range",
]
