"""Experiment configuration objects.

Configs are plain dataclasses that can round-trip through dictionaries /
JSON so experiment definitions can be stored alongside their results and
re-run exactly (the Monte-Carlo harness derives all randomness from the
``seed`` field).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Sequence

__all__ = [
    "SyntheticExperimentConfig",
    "TraceExperimentConfig",
    "FleetExperimentConfig",
    "DynamicExperimentConfig",
    "AdversaryExperimentConfig",
]

#: Strategy names evaluated in the paper's synthetic figures.
_DEFAULT_STRATEGIES = ("IM", "ML", "OO", "MO", "CML")


@dataclass(frozen=True)
class SyntheticExperimentConfig:
    """Configuration of a synthetic (Markov-model) experiment (Figs. 4-7).

    Attributes
    ----------
    n_cells:
        Number of cells ``L`` (paper: 10).
    horizon:
        Trajectory length ``T`` (paper: 100).
    n_runs:
        Monte-Carlo runs per data point (paper: 1000).
    n_services:
        Total trajectories ``N`` (user + chaffs) for single-setting plots.
    strategies:
        Strategy names to evaluate.
    mobility_models:
        Mobility-model labels (keys of ``paper_synthetic_models``).
    seed:
        Master seed for all randomness.
    engine:
        Monte-Carlo execution engine (``"batch"`` or ``"loop"``); both
        produce identical results for the same seed.
    workers:
        Worker processes for the experiment's independent points and run
        shards (``1`` = serial, ``0`` = all CPU cores).  Results are
        bit-identical for any value, so ``workers`` never enters the
        result-cache key.
    backend:
        Markov-chain storage backend: ``"dense"`` (the paper-scale
        reference), ``"sparse"`` (CSR kernels for city-scale ``L``), or
        ``"auto"`` (size/density heuristic).  At small ``L`` the sparse
        backend is bit-identical to dense.
    """

    n_cells: int = 10
    horizon: int = 100
    n_runs: int = 1000
    n_services: int = 2
    strategies: Sequence[str] = _DEFAULT_STRATEGIES
    mobility_models: Sequence[str] = (
        "non-skewed",
        "spatially-skewed",
        "temporally-skewed",
        "spatially&temporally-skewed",
    )
    seed: int = 2017
    engine: str = "batch"
    workers: int = 1
    backend: str = "dense"

    def __post_init__(self) -> None:
        if self.n_cells < 2:
            raise ValueError("n_cells must be at least 2")
        if self.horizon < 1:
            raise ValueError("horizon must be positive")
        if self.n_runs < 1:
            raise ValueError("n_runs must be positive")
        if self.n_services < 2:
            raise ValueError("n_services must be at least 2")
        if not self.strategies:
            raise ValueError("at least one strategy is required")
        if not self.mobility_models:
            raise ValueError("at least one mobility model is required")
        if self.engine not in ("batch", "loop"):
            raise ValueError("engine must be 'batch' or 'loop'")
        if self.workers < 0:
            raise ValueError("workers must be non-negative (0 = all cores)")
        if self.backend not in ("dense", "sparse", "auto"):
            raise ValueError("backend must be 'dense', 'sparse' or 'auto'")

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-serialisable)."""
        data = asdict(self)
        data["strategies"] = list(self.strategies)
        data["mobility_models"] = list(self.mobility_models)
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SyntheticExperimentConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        data = dict(data)
        if "strategies" in data:
            data["strategies"] = tuple(data["strategies"])
        if "mobility_models" in data:
            data["mobility_models"] = tuple(data["mobility_models"])
        return cls(**data)

    def scaled(self, *, n_runs: int | None = None, horizon: int | None = None):
        """Copy with a smaller run count / horizon (for tests and CI)."""
        return SyntheticExperimentConfig(
            n_cells=self.n_cells,
            horizon=horizon if horizon is not None else self.horizon,
            n_runs=n_runs if n_runs is not None else self.n_runs,
            n_services=self.n_services,
            strategies=tuple(self.strategies),
            mobility_models=tuple(self.mobility_models),
            seed=self.seed,
            engine=self.engine,
            workers=self.workers,
            backend=self.backend,
        )


@dataclass(frozen=True)
class TraceExperimentConfig:
    """Configuration of the trace-driven experiments (Figs. 8-10).

    Attributes
    ----------
    n_nodes:
        Taxi fleet size (paper: 174).
    horizon:
        Number of one-minute slots (paper: 100).
    n_towers:
        Target tower count before deduplication (paper ends at 959 cells;
        smaller values keep the experiments laptop-friendly).
    top_k_users:
        Number of most-trackable users analysed in Figs. 9(b)/10.
    n_chaffs:
        Chaffs per protected user (1 in Fig. 9(b), 2 in Fig. 10).
    strategies:
        Strategy names to evaluate for the protected users.
    seed:
        Master seed.
    engine:
        Monte-Carlo execution engine for any synthetic sub-sweeps
        (``"batch"`` or ``"loop"``).
    workers:
        Worker processes for independent experiment points (``1`` =
        serial, ``0`` = all CPU cores); never affects the numbers.
    """

    n_nodes: int = 174
    horizon: int = 100
    n_towers: int = 300
    top_k_users: int = 5
    n_chaffs: int = 1
    strategies: Sequence[str] = ("IM", "MO", "ML", "OO")
    seed: int = 2017
    engine: str = "batch"
    workers: int = 1
    extra: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ValueError("n_nodes must be at least 2")
        if self.horizon < 2:
            raise ValueError("horizon must be at least 2")
        if self.n_towers < 2:
            raise ValueError("n_towers must be at least 2")
        if self.top_k_users < 1:
            raise ValueError("top_k_users must be positive")
        if self.n_chaffs < 1:
            raise ValueError("n_chaffs must be positive")
        if not self.strategies:
            raise ValueError("at least one strategy is required")
        if self.engine not in ("batch", "loop"):
            raise ValueError("engine must be 'batch' or 'loop'")
        if self.workers < 0:
            raise ValueError("workers must be non-negative (0 = all cores)")

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-serialisable)."""
        data = asdict(self)
        data["strategies"] = list(self.strategies)
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TraceExperimentConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        data = dict(data)
        if "strategies" in data:
            data["strategies"] = tuple(data["strategies"])
        return cls(**data)

    def scaled(
        self,
        *,
        n_nodes: int | None = None,
        n_towers: int | None = None,
        horizon: int | None = None,
    ) -> "TraceExperimentConfig":
        """Copy with reduced sizes (for tests and CI)."""
        return TraceExperimentConfig(
            n_nodes=n_nodes if n_nodes is not None else self.n_nodes,
            horizon=horizon if horizon is not None else self.horizon,
            n_towers=n_towers if n_towers is not None else self.n_towers,
            top_k_users=self.top_k_users,
            n_chaffs=self.n_chaffs,
            strategies=tuple(self.strategies),
            seed=self.seed,
            engine=self.engine,
            workers=self.workers,
            extra=dict(self.extra),
        )


@dataclass(frozen=True)
class FleetExperimentConfig:
    """Configuration of the multi-user fleet experiment.

    Attributes
    ----------
    n_users:
        Fleet population ``M`` at the largest sweep point (and the fixed
        population of the capacity sweep).
    n_cells:
        Number of cells; the deployment is the densest grid factorisation
        of ``n_cells`` (e.g. 25 -> 5x5).
    site_capacity:
        Service slots per edge site at the largest sweep point (and the
        fixed capacity of the population sweep).
    horizon:
        Slots per fleet run ``T``.
    n_runs:
        Monte-Carlo fleet runs per sweep point.
    n_chaffs:
        Chaffs per user.
    strategy:
        Chaff strategy name shared by all users.
    mobility_model:
        Key of :func:`~repro.mobility.models.paper_synthetic_models`.
    population_sweep / capacity_sweep:
        Explicit sweep points; ``None`` derives them from ``n_users`` /
        ``site_capacity`` so every point fits the deployment.
    seed:
        Master seed for all randomness.
    engine:
        Fleet execution engine (``"batch"`` or ``"loop"``); identical
        results, batch is the vectorised fast path.
    workers:
        Worker processes for independent sweep points and run shards
        (``1`` = serial, ``0`` = all cores); never changes the numbers.
    backend:
        Markov-chain storage backend (``"dense"``, ``"sparse"`` or
        ``"auto"``); bit-identical results, sparse wins at large
        ``n_cells``.
    stream:
        Run fleet episodes through the streaming engine (bounded-memory
        horizon chunks); bit-identical to the batch engine.
    chunk_slots:
        Slots per streaming chunk (only used with ``stream=True``).
    regions:
        Topology regions for sharded placement (only used with
        ``stream=True``; 1 = serial placement).
    run_stack:
        Monte-Carlo episodes folded into one pass of the slot kernel
        (``1`` = per-episode execution).  Execution-only: every stack
        size yields bit-identical statistics.
    """

    n_users: int = 50
    n_cells: int = 25
    site_capacity: int = 8
    horizon: int = 100
    n_runs: int = 20
    n_chaffs: int = 1
    strategy: str = "IM"
    mobility_model: str = "non-skewed"
    population_sweep: "tuple[int, ...] | None" = None
    capacity_sweep: "tuple[int, ...] | None" = None
    seed: int = 2017
    engine: str = "batch"
    workers: int = 1
    backend: str = "dense"
    stream: bool = False
    chunk_slots: int = 64
    regions: int = 1
    run_stack: int = 1

    def __post_init__(self) -> None:
        if self.n_users < 1:
            raise ValueError("n_users must be positive")
        if self.n_cells < 2:
            raise ValueError("n_cells must be at least 2")
        if self.site_capacity < 1:
            raise ValueError("site_capacity must be positive")
        if self.horizon < 1:
            raise ValueError("horizon must be positive")
        if self.n_runs < 1:
            raise ValueError("n_runs must be positive")
        if self.n_chaffs < 0:
            raise ValueError("n_chaffs must be non-negative")
        if self.engine not in ("batch", "loop"):
            raise ValueError("engine must be 'batch' or 'loop'")
        if self.workers < 0:
            raise ValueError("workers must be non-negative (0 = all cores)")
        if self.backend not in ("dense", "sparse", "auto"):
            raise ValueError("backend must be 'dense', 'sparse' or 'auto'")
        if self.chunk_slots < 1:
            raise ValueError("chunk_slots must be positive")
        if self.regions < 1:
            raise ValueError("regions must be positive")
        if self.run_stack < 1:
            raise ValueError("run_stack must be positive")
        # Feasibility is validated for the sweep points the experiment
        # actually runs, not just the nominal (n_users, site_capacity)
        # point, so an infeasible config fails here with a clear message
        # instead of deep inside a (possibly pooled) fleet run.
        populations = self.populations()
        if not populations or any(m < 1 for m in populations):
            raise ValueError("population_sweep must list positive populations")
        capacities = self.capacities()
        if not capacities or any(c < 1 for c in capacities):
            raise ValueError("capacity_sweep must list positive capacities")
        slots = self.n_cells * self.site_capacity
        largest = max(populations) * self.services_per_user
        if largest > slots:
            raise ValueError(
                f"population sweep point {max(populations)} needs {largest} "
                f"service slots but the deployment only has {slots}; raise "
                "site_capacity or n_cells"
            )
        tightest = self.n_cells * min(capacities)
        services = self.n_users * self.services_per_user
        if services > tightest:
            raise ValueError(
                f"capacity sweep point {min(capacities)} offers {tightest} "
                f"service slots but the fleet needs {services}; raise the "
                "sweep's capacities or n_cells"
            )

    @property
    def services_per_user(self) -> int:
        """Real service plus chaffs, per user."""
        return 1 + self.n_chaffs

    def populations(self) -> tuple[int, ...]:
        """Population sweep points (derived from ``n_users`` when unset)."""
        if self.population_sweep is not None:
            return tuple(int(m) for m in self.population_sweep)
        points = {max(2, self.n_users // 5), max(3, self.n_users // 2), self.n_users}
        return tuple(sorted(m for m in points if m <= self.n_users))

    def capacities(self) -> tuple[int, ...]:
        """Capacity sweep points, all feasible for ``n_users``.

        The smallest point is the tightest capacity that still hosts the
        whole fleet (maximum contention), the largest is
        ``site_capacity``.
        """
        if self.capacity_sweep is not None:
            return tuple(int(c) for c in self.capacity_sweep)
        minimum = -(-self.n_users * self.services_per_user // self.n_cells)
        points = {minimum, (minimum + self.site_capacity) // 2, self.site_capacity}
        return tuple(sorted(c for c in points if c >= minimum))

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-serialisable)."""
        data = asdict(self)
        if self.population_sweep is not None:
            data["population_sweep"] = list(self.population_sweep)
        if self.capacity_sweep is not None:
            data["capacity_sweep"] = list(self.capacity_sweep)
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FleetExperimentConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        data = dict(data)
        for key in ("population_sweep", "capacity_sweep"):
            if data.get(key) is not None:
                data[key] = tuple(data[key])
        return cls(**data)

    def scaled(
        self,
        *,
        n_users: int | None = None,
        n_runs: int | None = None,
        horizon: int | None = None,
    ) -> "FleetExperimentConfig":
        """Copy with reduced sizes (for tests and CI)."""
        return FleetExperimentConfig(
            n_users=n_users if n_users is not None else self.n_users,
            n_cells=self.n_cells,
            site_capacity=self.site_capacity,
            horizon=horizon if horizon is not None else self.horizon,
            n_runs=n_runs if n_runs is not None else self.n_runs,
            n_chaffs=self.n_chaffs,
            strategy=self.strategy,
            mobility_model=self.mobility_model,
            population_sweep=self.population_sweep,
            capacity_sweep=self.capacity_sweep,
            seed=self.seed,
            engine=self.engine,
            workers=self.workers,
            backend=self.backend,
            stream=self.stream,
            chunk_slots=self.chunk_slots,
            regions=self.regions,
            run_stack=self.run_stack,
        )


@dataclass(frozen=True)
class DynamicExperimentConfig:
    """Configuration of the dynamic-world fleet experiment.

    The experiment runs the multi-user fleet on a *live* deployment: a
    :class:`~repro.world.timeline.Timeline` of regime switches, Poisson
    site failures and user churn generated from the config seed.  Two
    sweeps are reported — privacy and per-user cost versus the site
    failure rate (churn fixed) and versus the user churn rate (failures
    fixed).

    Attributes
    ----------
    n_users / n_cells / site_capacity / horizon / n_runs / n_chaffs /
    strategy / mobility_model:
        The fleet shape, as in :class:`FleetExperimentConfig` (the
        deployment is the densest grid factorisation of ``n_cells``).
    regime_model:
        Mobility model key of the alternate regime; ``None`` disables
        regime switching.
    regime_period:
        Slots between regime rotations (``None`` disables switching).
    failure_rate:
        Expected site failures per slot in the churn sweep.
    churn_rate:
        Fraction of transient users in the failure sweep.
    mean_downtime:
        Mean slots a failed site stays down.
    failure_sweep / churn_sweep:
        Explicit sweep points; ``None`` derives a small default sweep
        around ``failure_rate`` / ``churn_rate``.
    seed / engine / workers:
        As in every experiment config (``engine`` and ``workers`` never
        change the numbers and stay out of the cache key).
    """

    n_users: int = 40
    n_cells: int = 25
    site_capacity: int = 8
    horizon: int = 100
    n_runs: int = 10
    n_chaffs: int = 1
    strategy: str = "IM"
    mobility_model: str = "non-skewed"
    regime_model: "str | None" = "temporally-skewed"
    regime_period: "int | None" = 25
    failure_rate: float = 0.05
    churn_rate: float = 0.2
    mean_downtime: float = 5.0
    failure_sweep: "tuple[float, ...] | None" = None
    churn_sweep: "tuple[float, ...] | None" = None
    seed: int = 2017
    engine: str = "batch"
    workers: int = 1

    def __post_init__(self) -> None:
        if self.n_users < 1:
            raise ValueError("n_users must be positive")
        if self.n_cells < 2:
            raise ValueError("n_cells must be at least 2")
        if self.site_capacity < 1:
            raise ValueError("site_capacity must be positive")
        if self.horizon < 2:
            raise ValueError("horizon must be at least 2")
        if self.n_runs < 1:
            raise ValueError("n_runs must be positive")
        if self.n_chaffs < 0:
            raise ValueError("n_chaffs must be non-negative")
        if self.regime_period is not None and self.regime_period < 1:
            raise ValueError("regime_period must be positive (or None)")
        if self.failure_rate < 0:
            raise ValueError("failure_rate must be non-negative")
        if not 0.0 <= self.churn_rate <= 1.0:
            raise ValueError("churn_rate must be in [0, 1]")
        if self.mean_downtime < 1:
            raise ValueError("mean_downtime must be at least 1 slot")
        if any(rate < 0 for rate in self.failure_rates()):
            raise ValueError("failure_sweep rates must be non-negative")
        if any(not 0.0 <= rate <= 1.0 for rate in self.churn_rates()):
            raise ValueError("churn_sweep rates must be in [0, 1]")
        if self.engine not in ("batch", "loop"):
            raise ValueError("engine must be 'batch' or 'loop'")
        if self.workers < 0:
            raise ValueError("workers must be non-negative (0 = all cores)")
        slots = self.n_cells * self.site_capacity
        services = self.n_users * (1 + self.n_chaffs)
        if services > slots:
            raise ValueError(
                f"fleet needs {services} service slots but the deployment "
                f"only has {slots}; raise site_capacity or n_cells"
            )

    def failure_rates(self) -> tuple[float, ...]:
        """Failure-sweep points (derived from ``failure_rate`` when unset)."""
        if self.failure_sweep is not None:
            return tuple(float(rate) for rate in self.failure_sweep)
        return (0.0, self.failure_rate, 2 * self.failure_rate)

    def churn_rates(self) -> tuple[float, ...]:
        """Churn-sweep points (derived from ``churn_rate`` when unset)."""
        if self.churn_sweep is not None:
            return tuple(float(rate) for rate in self.churn_sweep)
        return (0.0, self.churn_rate, min(1.0, 2 * self.churn_rate))

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-serialisable)."""
        data = asdict(self)
        if self.failure_sweep is not None:
            data["failure_sweep"] = list(self.failure_sweep)
        if self.churn_sweep is not None:
            data["churn_sweep"] = list(self.churn_sweep)
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "DynamicExperimentConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        data = dict(data)
        for key in ("failure_sweep", "churn_sweep"):
            if data.get(key) is not None:
                data[key] = tuple(data[key])
        return cls(**data)

    def scaled(
        self,
        *,
        n_users: int | None = None,
        n_runs: int | None = None,
        horizon: int | None = None,
    ) -> "DynamicExperimentConfig":
        """Copy with reduced sizes (for tests and CI)."""
        horizon = horizon if horizon is not None else self.horizon
        period = self.regime_period
        if period is not None:
            period = max(2, min(period, horizon // 2))
        return DynamicExperimentConfig(
            n_users=n_users if n_users is not None else self.n_users,
            n_cells=self.n_cells,
            site_capacity=self.site_capacity,
            horizon=horizon,
            n_runs=n_runs if n_runs is not None else self.n_runs,
            n_chaffs=self.n_chaffs,
            strategy=self.strategy,
            mobility_model=self.mobility_model,
            regime_model=self.regime_model,
            regime_period=period,
            failure_rate=self.failure_rate,
            churn_rate=self.churn_rate,
            mean_downtime=self.mean_downtime,
            failure_sweep=self.failure_sweep,
            churn_sweep=self.churn_sweep,
            seed=self.seed,
            engine=self.engine,
            workers=self.workers,
        )


#: Knowledge levels accepted by :class:`AdversaryExperimentConfig`.
_KNOWLEDGE_LEVELS = ("oracle", "learned", "stale")


@dataclass(frozen=True)
class AdversaryExperimentConfig:
    """Configuration of the adversary knowledge/coverage ladder experiment.

    The experiment simulates one fleet Monte-Carlo (optionally on a
    regime-switching world, so ``stale`` knowledge has something to be
    blind to) and replays the *same* reports against a grid of
    adversaries: every knowledge level crossed with a coverage-fraction
    sweep (single compromised view) and a coalition-size sweep (several
    partial views merged).  Reported per point: detection rate, tracking
    accuracy — the "how much must the attacker know/see before privacy
    collapses" curve — plus the defender's (adversary-independent) cost.

    Attributes
    ----------
    n_users / n_cells / site_capacity / horizon / n_runs / n_chaffs /
    strategy / mobility_model:
        The fleet shape, as in :class:`FleetExperimentConfig` (the
        deployment is the densest grid factorisation of ``n_cells``).
    regime_model / regime_period:
        Mobility regime rotation of the world (``None`` period disables
        it; without regimes ``stale`` coincides with ``oracle``).
    knowledge_levels:
        Subset of ``("oracle", "learned", "stale")`` to evaluate.
    coverage_fractions:
        Compromised-site fractions of the single-view sweep (coalition
        size 1); values in ``(0, 1]``.
    coalition_sizes:
        Member counts of the coalition sweep; each member compromises
        its own seeded ``coalition_fraction`` of the sites.
    coalition_fraction:
        Per-member coverage fraction of the coalition sweep.
    smoothing / warm_start:
        Learned-knowledge fit parameters (additive smoothing; whether
        the adversary's counts persist episode over episode).
    seed / engine / workers:
        As in every experiment config (``engine`` and ``workers`` never
        change the numbers and stay out of the cache key; workers shard
        the report simulation, never the order-dependent evaluation).
    run_stack:
        Monte-Carlo episodes folded into one pass of the slot kernel
        during report simulation (``1`` = per-episode).  Execution-only:
        bit-identical reports for every stack size.
    """

    n_users: int = 30
    n_cells: int = 25
    site_capacity: int = 8
    horizon: int = 60
    n_runs: int = 10
    n_chaffs: int = 1
    strategy: str = "IM"
    mobility_model: str = "non-skewed"
    regime_model: "str | None" = "temporally-skewed"
    regime_period: "int | None" = 20
    knowledge_levels: Sequence[str] = _KNOWLEDGE_LEVELS
    coverage_fractions: Sequence[float] = (0.2, 0.5, 1.0)
    coalition_sizes: Sequence[int] = (1, 2, 4)
    coalition_fraction: float = 0.2
    smoothing: float = 1e-3
    warm_start: bool = True
    seed: int = 2017
    engine: str = "batch"
    workers: int = 1
    run_stack: int = 1

    def __post_init__(self) -> None:
        if self.n_users < 1:
            raise ValueError("n_users must be positive")
        if self.n_cells < 2:
            raise ValueError("n_cells must be at least 2")
        if self.site_capacity < 1:
            raise ValueError("site_capacity must be positive")
        if self.horizon < 2:
            raise ValueError("horizon must be at least 2")
        if self.n_runs < 1:
            raise ValueError("n_runs must be positive")
        if self.n_chaffs < 0:
            raise ValueError("n_chaffs must be non-negative")
        if self.regime_period is not None and self.regime_period < 1:
            raise ValueError("regime_period must be positive (or None)")
        if not self.knowledge_levels:
            raise ValueError("at least one knowledge level is required")
        for level in self.knowledge_levels:
            if level not in _KNOWLEDGE_LEVELS:
                raise ValueError(
                    f"unknown knowledge level {level!r}; "
                    f"available: {_KNOWLEDGE_LEVELS}"
                )
        if not self.coverage_fractions:
            raise ValueError("at least one coverage fraction is required")
        if any(not 0.0 < f <= 1.0 for f in self.coverage_fractions):
            raise ValueError("coverage fractions must be in (0, 1]")
        if not self.coalition_sizes:
            raise ValueError("at least one coalition size is required")
        if any(s < 1 for s in self.coalition_sizes):
            raise ValueError("coalition sizes must be positive")
        if not 0.0 < self.coalition_fraction <= 1.0:
            raise ValueError("coalition_fraction must be in (0, 1]")
        if self.smoothing <= 0:
            raise ValueError("smoothing must be positive")
        if self.engine not in ("batch", "loop"):
            raise ValueError("engine must be 'batch' or 'loop'")
        if self.workers < 0:
            raise ValueError("workers must be non-negative (0 = all cores)")
        if self.run_stack < 1:
            raise ValueError("run_stack must be positive")
        slots = self.n_cells * self.site_capacity
        services = self.n_users * (1 + self.n_chaffs)
        if services > slots:
            raise ValueError(
                f"fleet needs {services} service slots but the deployment "
                f"only has {slots}; raise site_capacity or n_cells"
            )

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-serialisable)."""
        data = asdict(self)
        data["knowledge_levels"] = list(self.knowledge_levels)
        data["coverage_fractions"] = list(self.coverage_fractions)
        data["coalition_sizes"] = list(self.coalition_sizes)
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "AdversaryExperimentConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        data = dict(data)
        if "knowledge_levels" in data:
            data["knowledge_levels"] = tuple(data["knowledge_levels"])
        if "coverage_fractions" in data:
            data["coverage_fractions"] = tuple(data["coverage_fractions"])
        if "coalition_sizes" in data:
            data["coalition_sizes"] = tuple(data["coalition_sizes"])
        return cls(**data)

    def scaled(
        self,
        *,
        n_users: int | None = None,
        n_runs: int | None = None,
        horizon: int | None = None,
    ) -> "AdversaryExperimentConfig":
        """Copy with reduced sizes (for tests and CI)."""
        horizon = horizon if horizon is not None else self.horizon
        period = self.regime_period
        if period is not None:
            period = max(2, min(period, horizon // 2))
        return AdversaryExperimentConfig(
            n_users=n_users if n_users is not None else self.n_users,
            n_cells=self.n_cells,
            site_capacity=self.site_capacity,
            horizon=horizon,
            n_runs=n_runs if n_runs is not None else self.n_runs,
            n_chaffs=self.n_chaffs,
            strategy=self.strategy,
            mobility_model=self.mobility_model,
            regime_model=self.regime_model,
            regime_period=period,
            knowledge_levels=tuple(self.knowledge_levels),
            coverage_fractions=tuple(self.coverage_fractions),
            coalition_sizes=tuple(self.coalition_sizes),
            coalition_fraction=self.coalition_fraction,
            smoothing=self.smoothing,
            warm_start=self.warm_start,
            seed=self.seed,
            engine=self.engine,
            workers=self.workers,
            run_stack=self.run_stack,
        )
