"""Experiment configuration objects.

Configs are plain dataclasses that can round-trip through dictionaries /
JSON so experiment definitions can be stored alongside their results and
re-run exactly (the Monte-Carlo harness derives all randomness from the
``seed`` field).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Sequence

__all__ = ["SyntheticExperimentConfig", "TraceExperimentConfig"]

#: Strategy names evaluated in the paper's synthetic figures.
_DEFAULT_STRATEGIES = ("IM", "ML", "OO", "MO", "CML")


@dataclass(frozen=True)
class SyntheticExperimentConfig:
    """Configuration of a synthetic (Markov-model) experiment (Figs. 4-7).

    Attributes
    ----------
    n_cells:
        Number of cells ``L`` (paper: 10).
    horizon:
        Trajectory length ``T`` (paper: 100).
    n_runs:
        Monte-Carlo runs per data point (paper: 1000).
    n_services:
        Total trajectories ``N`` (user + chaffs) for single-setting plots.
    strategies:
        Strategy names to evaluate.
    mobility_models:
        Mobility-model labels (keys of ``paper_synthetic_models``).
    seed:
        Master seed for all randomness.
    engine:
        Monte-Carlo execution engine (``"batch"`` or ``"loop"``); both
        produce identical results for the same seed.
    workers:
        Worker processes for the experiment's independent points and run
        shards (``1`` = serial, ``0`` = all CPU cores).  Results are
        bit-identical for any value, so ``workers`` never enters the
        result-cache key.
    """

    n_cells: int = 10
    horizon: int = 100
    n_runs: int = 1000
    n_services: int = 2
    strategies: Sequence[str] = _DEFAULT_STRATEGIES
    mobility_models: Sequence[str] = (
        "non-skewed",
        "spatially-skewed",
        "temporally-skewed",
        "spatially&temporally-skewed",
    )
    seed: int = 2017
    engine: str = "batch"
    workers: int = 1

    def __post_init__(self) -> None:
        if self.n_cells < 2:
            raise ValueError("n_cells must be at least 2")
        if self.horizon < 1:
            raise ValueError("horizon must be positive")
        if self.n_runs < 1:
            raise ValueError("n_runs must be positive")
        if self.n_services < 2:
            raise ValueError("n_services must be at least 2")
        if not self.strategies:
            raise ValueError("at least one strategy is required")
        if not self.mobility_models:
            raise ValueError("at least one mobility model is required")
        if self.engine not in ("batch", "loop"):
            raise ValueError("engine must be 'batch' or 'loop'")
        if self.workers < 0:
            raise ValueError("workers must be non-negative (0 = all cores)")

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-serialisable)."""
        data = asdict(self)
        data["strategies"] = list(self.strategies)
        data["mobility_models"] = list(self.mobility_models)
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SyntheticExperimentConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        data = dict(data)
        if "strategies" in data:
            data["strategies"] = tuple(data["strategies"])
        if "mobility_models" in data:
            data["mobility_models"] = tuple(data["mobility_models"])
        return cls(**data)

    def scaled(self, *, n_runs: int | None = None, horizon: int | None = None):
        """Copy with a smaller run count / horizon (for tests and CI)."""
        return SyntheticExperimentConfig(
            n_cells=self.n_cells,
            horizon=horizon if horizon is not None else self.horizon,
            n_runs=n_runs if n_runs is not None else self.n_runs,
            n_services=self.n_services,
            strategies=tuple(self.strategies),
            mobility_models=tuple(self.mobility_models),
            seed=self.seed,
            engine=self.engine,
            workers=self.workers,
        )


@dataclass(frozen=True)
class TraceExperimentConfig:
    """Configuration of the trace-driven experiments (Figs. 8-10).

    Attributes
    ----------
    n_nodes:
        Taxi fleet size (paper: 174).
    horizon:
        Number of one-minute slots (paper: 100).
    n_towers:
        Target tower count before deduplication (paper ends at 959 cells;
        smaller values keep the experiments laptop-friendly).
    top_k_users:
        Number of most-trackable users analysed in Figs. 9(b)/10.
    n_chaffs:
        Chaffs per protected user (1 in Fig. 9(b), 2 in Fig. 10).
    strategies:
        Strategy names to evaluate for the protected users.
    seed:
        Master seed.
    engine:
        Monte-Carlo execution engine for any synthetic sub-sweeps
        (``"batch"`` or ``"loop"``).
    workers:
        Worker processes for independent experiment points (``1`` =
        serial, ``0`` = all CPU cores); never affects the numbers.
    """

    n_nodes: int = 174
    horizon: int = 100
    n_towers: int = 300
    top_k_users: int = 5
    n_chaffs: int = 1
    strategies: Sequence[str] = ("IM", "MO", "ML", "OO")
    seed: int = 2017
    engine: str = "batch"
    workers: int = 1
    extra: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ValueError("n_nodes must be at least 2")
        if self.horizon < 2:
            raise ValueError("horizon must be at least 2")
        if self.n_towers < 2:
            raise ValueError("n_towers must be at least 2")
        if self.top_k_users < 1:
            raise ValueError("top_k_users must be positive")
        if self.n_chaffs < 1:
            raise ValueError("n_chaffs must be positive")
        if not self.strategies:
            raise ValueError("at least one strategy is required")
        if self.engine not in ("batch", "loop"):
            raise ValueError("engine must be 'batch' or 'loop'")
        if self.workers < 0:
            raise ValueError("workers must be non-negative (0 = all cores)")

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-serialisable)."""
        data = asdict(self)
        data["strategies"] = list(self.strategies)
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TraceExperimentConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        data = dict(data)
        if "strategies" in data:
            data["strategies"] = tuple(data["strategies"])
        return cls(**data)

    def scaled(
        self,
        *,
        n_nodes: int | None = None,
        n_towers: int | None = None,
        horizon: int | None = None,
    ) -> "TraceExperimentConfig":
        """Copy with reduced sizes (for tests and CI)."""
        return TraceExperimentConfig(
            n_nodes=n_nodes if n_nodes is not None else self.n_nodes,
            horizon=horizon if horizon is not None else self.horizon,
            n_towers=n_towers if n_towers is not None else self.n_towers,
            top_k_users=self.top_k_users,
            n_chaffs=self.n_chaffs,
            strategies=tuple(self.strategies),
            seed=self.seed,
            engine=self.engine,
            workers=self.workers,
            extra=dict(self.extra),
        )
