"""File discovery and rule execution for ``repro-lint``."""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from .findings import DisableDirectives, Finding
from .rules import RULES, FileContext, build_aliases

__all__ = ["iter_python_files", "lint_source", "lint_paths"]

#: Directories never descended into.
_SKIP_DIRS = {".git", "__pycache__", ".mypy_cache", ".ruff_cache", ".venv", "node_modules"}


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` (files pass through as-is)."""
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    yield candidate
        elif path.suffix == ".py":
            yield path
        elif not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")


def _select(
    findings: Iterable[Finding],
    select: Sequence[str] | None,
    ignore: Sequence[str] | None,
) -> list[Finding]:
    chosen = {code.upper() for code in select} if select else None
    dropped = {code.upper() for code in ignore} if ignore else set()
    return [
        finding
        for finding in findings
        if (chosen is None or finding.code in chosen) and finding.code not in dropped
    ]


def lint_source(
    source: str,
    path: str | Path,
    *,
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
) -> list[Finding]:
    """Lint one file's source text.  ``path`` decides which rules apply."""
    path = Path(path)
    display = str(path)
    try:
        tree = ast.parse(source, filename=display)
    except SyntaxError as exc:
        return _select(
            [
                Finding(
                    path=display,
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1,
                    code="RPL000",
                    message=f"syntax error: {exc.msg}",
                )
            ],
            select,
            ignore,
        )
    ctx = FileContext(
        path=display,
        parts=path.parts,
        source=source,
        tree=tree,
        aliases=build_aliases(tree),
    )
    directives = DisableDirectives.parse(source)
    findings = [
        finding
        for rule in RULES
        for finding in rule.run(ctx)
        if not directives.suppresses(finding)
    ]
    return sorted(_select(findings, select, ignore))


def lint_paths(
    paths: Iterable[str | Path],
    *,
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
) -> list[Finding]:
    """Lint every python file under ``paths`` with the AST rule set."""
    findings: list[Finding] = []
    for file in iter_python_files(paths):
        findings.extend(
            lint_source(
                file.read_text(encoding="utf-8"),
                file,
                select=select,
                ignore=ignore,
            )
        )
    return findings
