"""RPL006 — every registered experiment config round-trips its cache key.

The on-disk result cache (:mod:`repro.sim.cache`) keys entries by the
canonical JSON form of an experiment's config.  A config whose ``to_dict``
emits something JSON can't represent deterministically, or whose
``from_dict`` does not reproduce the exact same canonical form, silently
degrades the cache: identical invocations stop hitting, or — worse —
different invocations collide.  This check runs against the *live*
registry at lint time, so adding an experiment with a broken config is a
CI failure, not a cache-debugging session.

For each registered experiment the config class is resolved from the
runner's first-parameter annotation, default-constructed, and required to

1. produce a cacheable key (``experiment_cache_key`` is not ``None``);
2. survive ``to_dict -> canonical JSON -> from_dict -> to_dict`` with an
   identical canonical form and an identical cache key;
3. keep its cache key invariant when any ``EXECUTION_ONLY_KEYS`` field
   (``engine``, ``workers``, ``stream``, …) is perturbed — execution
   knobs select *how* a result is computed, never *what* it is.
"""

from __future__ import annotations

import inspect
import json
from typing import Any, Callable, Iterator

from .findings import Finding

__all__ = ["check_config_contracts"]

_CODE = "RPL006"


def _canonical(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _config_class(runner: Callable[..., Any]) -> type | None:
    """The config class named by ``runner``'s first parameter, if any."""
    func = inspect.unwrap(runner)
    try:
        parameters = list(inspect.signature(func).parameters.values())
    except (TypeError, ValueError):
        return None
    if not parameters:
        return None
    annotation = parameters[0].annotation
    if annotation is inspect.Parameter.empty:
        return None
    # Annotations are strings under ``from __future__ import annotations``;
    # take the first union member and resolve it in the runner's module.
    name = str(annotation).split("|")[0].strip().strip("\"'")
    module = inspect.getmodule(func)
    candidate = getattr(module, name, None)
    return candidate if inspect.isclass(candidate) else None


def _location(cls: type) -> tuple[str, int]:
    try:
        path = inspect.getsourcefile(cls) or "<unknown>"
        line = inspect.getsourcelines(cls)[1]
    except (OSError, TypeError):
        path, line = "<unknown>", 1
    return path, line


def _check_one(experiment_id: str, cls: type) -> Iterator[Finding]:
    from repro.sim.cache import EXECUTION_ONLY_KEYS, experiment_cache_key

    path, line = _location(cls)

    def fail(message: str) -> Finding:
        return Finding(
            path=path,
            line=line,
            col=1,
            code=_CODE,
            message=f"[{experiment_id}] {cls.__name__}: {message}",
        )

    try:
        config = cls()
    except TypeError as exc:
        yield fail(
            f"not default-constructible ({exc}); registered configs must "
            "have full defaults so cache keys are derivable"
        )
        return
    if not hasattr(config, "to_dict") or not hasattr(cls, "from_dict"):
        yield fail("must define to_dict/from_dict for cache keying")
        return
    first = config.to_dict()
    key = experiment_cache_key(experiment_id, first)
    if key is None:
        yield fail(
            "to_dict() is not canonically JSON-serialisable, so every "
            "invocation bypasses the result cache"
        )
        return
    round_tripped = cls.from_dict(json.loads(_canonical(first)))
    second = round_tripped.to_dict()
    if _canonical(second) != _canonical(first):
        yield fail(
            "to_dict -> JSON -> from_dict -> to_dict changes the canonical "
            "form; cached results would never be re-hit after a round trip"
        )
        return
    if experiment_cache_key(experiment_id, second) != key:
        yield fail("cache key changes across a config round trip")
        return
    # Execution-only knobs (engine, workers, stream, ...) change *how* a
    # result is computed, never *what* it is — so none of them may reach
    # the cache key.  Probe each one with a sentinel value the config could
    # never legitimately carry.
    for exec_key in EXECUTION_ONLY_KEYS:
        probed = dict(first)
        probed[exec_key] = "__repro_lint_probe__"
        if experiment_cache_key(experiment_id, probed) != key:
            yield fail(
                f"execution-only field {exec_key!r} leaks into the cache "
                "key; identical experiments run with different execution "
                "knobs would stop sharing cached results"
            )


def check_config_contracts() -> list[Finding]:
    """Round-trip every registered experiment's config through the cache key."""
    try:
        from repro.experiments.registry import EXPERIMENTS
    except Exception as exc:  # pragma: no cover - import-environment specific
        return [
            Finding(
                path="<registry>",
                line=1,
                col=1,
                code=_CODE,
                message=f"experiment registry not importable: {exc}",
            )
        ]
    findings: list[Finding] = []
    checked: set[type] = set()
    for experiment_id in sorted(EXPERIMENTS):
        cls = _config_class(EXPERIMENTS[experiment_id])
        if cls is None or cls in checked:
            continue
        checked.add(cls)
        findings.extend(_check_one(experiment_id, cls))
    return findings
