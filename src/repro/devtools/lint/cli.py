"""``repro-lint`` — the determinism-contract linter's command line.

Usage::

    repro-lint src/ tests/              # AST rules + registry contract
    repro-lint --no-contract examples/  # AST rules only
    repro-lint --list-rules

Exit status: 0 when clean, 1 when findings were reported, 2 on usage
errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .contract import check_config_contracts
from .engine import lint_paths
from .rules import RULES, rule_codes

__all__ = ["main"]


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based determinism-contract linter for repro-mec.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests", "examples", "benchmarks"],
        help="files or directories to lint (default: src tests examples benchmarks)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="CODE",
        help="only report these rule codes (repeatable)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        metavar="CODE",
        help="never report these rule codes (repeatable)",
    )
    parser.add_argument(
        "--no-contract",
        action="store_true",
        help="skip the RPL006 registry round-trip check (no repro import)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule code with its one-line summary and exit",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress the final summary line",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    if args.list_rules:
        for rule in RULES:
            print(f"{rule.code}  {rule.summary}")
        print(
            "RPL006  registered experiment configs must round-trip the "
            "canonical cache-key JSON"
        )
        return 0
    for code_list in (args.select, args.ignore):
        for code in code_list or ():
            if code.upper() not in {*rule_codes(), "RPL000"}:
                print(f"repro-lint: unknown rule code {code!r}", file=sys.stderr)
                return 2
    try:
        findings = lint_paths(args.paths, select=args.select, ignore=args.ignore)
    except FileNotFoundError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2
    run_contract = not args.no_contract and (
        args.select is None or "RPL006" in {c.upper() for c in args.select}
    )
    if run_contract and "RPL006" not in {
        c.upper() for c in args.ignore or ()
    }:
        findings.extend(check_config_contracts())
    for finding in findings:
        print(finding.format())
    if not args.quiet:
        label = "finding" if len(findings) == 1 else "findings"
        print(f"repro-lint: {len(findings)} {label}", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
