"""The RPL rule set: AST checks for the repo's determinism contracts.

Each rule encodes one invariant that an earlier PR had to restore by hand:

========  ==================================================================
RPL001    seeding flows through :mod:`repro.sim.seeding` SeedSequence
          helpers — no ``np.random.seed`` / ``RandomState`` / seed
          arithmetic inside ``default_rng`` (the PR-2 stream-overlap bug).
RPL002    no raw ``np.log`` / ``np.log2`` on probability data inside the
          ``repro`` package — use the ``LOG_FLOOR``-guarded helpers of
          :mod:`repro.numerics` (the PR-1 log-of-zero bug class).
RPL003    no direct dense-matrix attribute access on chains outside
          ``repro/mobility`` — use the backend-agnostic accessors
          (``log_transition_entries``, ``transition_row``,
          ``transition_edges``, ``dense_transition``, …), so the sparse
          backend keeps serving every call site (the PR-6 rewrite class).
RPL004    no ``.toarray()`` / ``.todense()`` without a declared dense-size
          guard (``DENSE_MATERIALISE_LIMIT`` / ``DENSE_STATIONARY_LIMIT``)
          in the enclosing function — accidental densification of a
          city-scale chain must fail loudly, not swap.
RPL005    no wall-clock or ambient-entropy calls inside ``repro/sim``,
          ``repro/mec``, ``repro/adversary``, ``repro/world`` — cache keys
          and worker bit-invariance depend on those layers being pure
          functions of their inputs.
RPL007    no ``(M, N, T)`` full-plane allocation (``np.empty``/``zeros``/
          ``ones``/``full`` with a literal 3-tuple shape) inside
          ``repro/{mec,adversary,world,sim}`` without the declared
          ``FULL_PLANE_LIMIT`` guard in the enclosing function — the
          streaming engine exists so city-scale episodes never hold a
          whole horizon in memory (the PR-8 bounded-memory contract).
RPL008    telemetry clocks stay injected in the pure layers: no *reference*
          to a wall-clock function (RPL005 bans the calls; this bans
          passing ``time.perf_counter`` around as data), and no
          ``Recorder(...)`` without an explicit ``clock=`` keyword —
          instrumented code receives its clock from the composition
          root (the CLI / telemetry package), never names one itself.
========  ==================================================================

RPL006 (experiment-config cache-key round-trips) is not an AST rule; it
lives in :mod:`repro.devtools.lint.contract` and runs against the live
experiment registry.

Suppress a deliberate violation with ``# repro-lint: disable=RPL00x`` on
the offending line (state why in a neighbouring comment).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

from .findings import Finding

__all__ = ["FileContext", "Rule", "RULES", "rule_codes", "build_aliases"]


# ----------------------------------------------------------------------
# File context and import-alias resolution
# ----------------------------------------------------------------------
@dataclass
class FileContext:
    """Everything a rule needs to know about one parsed file."""

    path: str
    parts: tuple[str, ...]
    source: str
    tree: ast.Module
    aliases: dict[str, str]

    # -- package scoping ------------------------------------------------
    def repro_subpath(self) -> tuple[str, ...] | None:
        """Path parts below the last ``repro`` package directory, if any.

        ``.../src/repro/sim/cache.py`` -> ``("sim", "cache.py")``;
        returns ``None`` for files outside the package (tests, examples).
        """
        parts = self.parts
        for index in range(len(parts) - 1, -1, -1):
            if parts[index] == "repro":
                return parts[index + 1 :]
        return None

    def in_repro(self) -> bool:
        return self.repro_subpath() is not None

    def in_repro_dir(self, *dirs: str) -> bool:
        """Whether the file sits under ``repro/<one of dirs>/``."""
        sub = self.repro_subpath()
        return sub is not None and len(sub) > 1 and sub[0] in dirs


def build_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to the dotted module/object paths they import.

    ``import numpy as np`` -> ``{"np": "numpy"}``;
    ``from numpy.random import default_rng`` ->
    ``{"default_rng": "numpy.random.default_rng"}``;
    ``from datetime import datetime`` -> ``{"datetime": "datetime.datetime"}``.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                if name.asname is not None:
                    aliases[name.asname] = name.name
                else:
                    top = name.name.split(".", 1)[0]
                    aliases[top] = top
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for name in node.names:
                aliases[name.asname or name.name] = f"{node.module}.{name.name}"
    return aliases


def qualified_name(node: ast.expr, aliases: dict[str, str]) -> str | None:
    """Resolve an attribute chain to its imported dotted path, if any.

    ``np.random.seed`` resolves to ``"numpy.random.seed"`` when ``np`` was
    imported as numpy.  Chains not rooted in an import resolve to ``None``
    (locals and ``self`` attributes are never qualified).
    """
    chain: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        chain.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    base = aliases.get(current.id)
    if base is None:
        return None
    return ".".join([base, *reversed(chain)])


def _contains_arithmetic(node: ast.AST) -> bool:
    """Whether ``node`` computes seed arithmetic (PR-2's overlap bug).

    Arithmetic inside a subscript *index* is exempt: indexing a spawned
    child list (``default_rng(children[i * k + j])``) is the canonical
    correct pattern, and the arithmetic there selects a stream rather
    than deriving one.
    """
    if isinstance(node, ast.BinOp):
        return True
    if isinstance(node, ast.Subscript):
        return _contains_arithmetic(node.value)
    return any(_contains_arithmetic(child) for child in ast.iter_child_nodes(node))


def _iter_calls(tree: ast.Module) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


# ----------------------------------------------------------------------
# Rule plumbing
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Rule:
    """One lint rule: a code, a scope predicate and a checker."""

    code: str
    summary: str
    applies: Callable[[FileContext], bool]
    check: Callable[[FileContext], list[Finding]]

    def run(self, ctx: FileContext) -> list[Finding]:
        if not self.applies(ctx):
            return []
        return self.check(ctx)


def _finding(ctx: FileContext, node: ast.AST, code: str, message: str) -> Finding:
    return Finding(
        path=ctx.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0) + 1,
        code=code,
        message=message,
    )


# ----------------------------------------------------------------------
# RPL001 — SeedSequence-only seeding
# ----------------------------------------------------------------------
_RPL001_BANNED = {
    "numpy.random.seed": "global-state seeding",
    "numpy.random.RandomState": "the legacy RandomState generator",
    "numpy.random.rand": "the legacy global generator",
    "numpy.random.randn": "the legacy global generator",
    "numpy.random.randint": "the legacy global generator",
}


def _check_rpl001(ctx: FileContext) -> list[Finding]:
    findings = []
    for call in _iter_calls(ctx.tree):
        name = qualified_name(call.func, ctx.aliases)
        if name in _RPL001_BANNED:
            findings.append(
                _finding(
                    ctx,
                    call,
                    "RPL001",
                    f"{name} is {_RPL001_BANNED[name]}; derive streams by "
                    "spawning SeedSequence children via repro.sim.seeding "
                    "(as_seed_sequence / spawn_generators)",
                )
            )
        elif name == "numpy.random.default_rng" and any(
            _contains_arithmetic(arg) for arg in [*call.args, *[k.value for k in call.keywords]]
        ):
            findings.append(
                _finding(
                    ctx,
                    call,
                    "RPL001",
                    "seed arithmetic inside default_rng creates overlapping "
                    "streams across sweeps; spawn SeedSequence children via "
                    "repro.sim.seeding instead (spawn_generators / "
                    "spawn_sequences)",
                )
            )
    return findings


# ----------------------------------------------------------------------
# RPL002 — floor-guarded logs on probability data
# ----------------------------------------------------------------------
_RPL002_LOGS = ("numpy.log", "numpy.log2", "numpy.log10")
#: ``np.log(LOG_FLOOR)`` — taking the log *of the floor constant itself* is
#: the guarded idiom, not a violation.
_FLOOR_NAMES = {"LOG_FLOOR"}


def _is_floor_constant(node: ast.expr) -> bool:
    return (isinstance(node, ast.Name) and node.id in _FLOOR_NAMES) or (
        isinstance(node, ast.Attribute) and node.attr in _FLOOR_NAMES
    )


def _check_rpl002(ctx: FileContext) -> list[Finding]:
    findings = []
    for call in _iter_calls(ctx.tree):
        name = qualified_name(call.func, ctx.aliases)
        if name not in _RPL002_LOGS:
            continue
        if len(call.args) == 1 and _is_floor_constant(call.args[0]):
            continue
        findings.append(
            _finding(
                ctx,
                call,
                "RPL002",
                f"raw {name} underflows to -inf on structurally-zero "
                "probabilities; use repro.numerics.safe_log (LOG_FLOOR "
                "guarded), or disable with a comment stating why the "
                "argument is provably positive",
            )
        )
    return findings


# ----------------------------------------------------------------------
# RPL003 — backend-agnostic chain access
# ----------------------------------------------------------------------
#: Dense-storage attributes of MarkovChain that only ``repro/mobility`` (and
#: an object's own methods, via ``self``) may touch.  Everything else goes
#: through the accessor API, which the sparse backend also serves.
_RPL003_ATTRS = {
    "transition_matrix": "dense_transition() / transition_row() / "
    "log_transition_entries() / transition_edges()",
    "_log_transition": "log_transition_entries()",
    "_cumulative_transition": "evolve_from_uniforms() / sample_next_state()",
    "_log_data": "log_transition_entries()",
    "_flat_keys": "log_transition_entries()",
    "_dense_cache": "dense_transition()",
}


def _check_rpl003(ctx: FileContext) -> list[Finding]:
    findings = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Attribute) or node.attr not in _RPL003_ATTRS:
            continue
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            continue  # a class's own storage is its own business
        findings.append(
            _finding(
                ctx,
                node,
                "RPL003",
                f"direct .{node.attr} access bypasses the chain backend; "
                f"use {_RPL003_ATTRS[node.attr]} so sparse chains keep "
                "working at city scale",
            )
        )
    return findings


# ----------------------------------------------------------------------
# RPL004 — guarded dense materialisation
# ----------------------------------------------------------------------
_RPL004_METHODS = {"toarray", "todense"}
_RPL004_GUARDS = {"DENSE_MATERIALISE_LIMIT", "DENSE_STATIONARY_LIMIT"}


def _check_rpl004(ctx: FileContext) -> list[Finding]:
    findings: list[Finding] = []

    def guard_names(func: ast.AST) -> set[str]:
        return {
            sub.id
            for sub in ast.walk(func)
            if isinstance(sub, ast.Name) and sub.id in _RPL004_GUARDS
        } | {
            sub.attr
            for sub in ast.walk(func)
            if isinstance(sub, ast.Attribute) and sub.attr in _RPL004_GUARDS
        }

    def visit(node: ast.AST, guarded: bool) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            guarded = bool(guard_names(node))
        for child in ast.iter_child_nodes(node):
            if (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and child.func.attr in _RPL004_METHODS
            ):
                if not guarded:
                    findings.append(
                        _finding(
                            ctx,
                            child,
                            "RPL004",
                            f".{child.func.attr}() without a dense-size guard "
                            "(DENSE_MATERIALISE_LIMIT) in the enclosing "
                            "function: a city-scale chain would silently "
                            "materialise O(L^2) memory",
                        )
                    )
            visit(child, guarded)

    visit(ctx.tree, guarded=False)
    return findings


# ----------------------------------------------------------------------
# RPL005 — purity of the simulation layers
# ----------------------------------------------------------------------
_RPL005_BANNED = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "os.urandom",
    "os.getrandom",
    "uuid.uuid1",
    "uuid.uuid4",
    "secrets.token_bytes",
    "secrets.token_hex",
    "secrets.token_urlsafe",
    "secrets.randbits",
    "secrets.randbelow",
    "random.random",
    "random.randint",
    "random.randrange",
    "random.choice",
    "random.shuffle",
    "random.sample",
    "random.uniform",
    "random.seed",
    "random.getrandbits",
}
_RPL005_DIRS = ("sim", "mec", "adversary", "world")


def _check_rpl005(ctx: FileContext) -> list[Finding]:
    findings = []
    for call in _iter_calls(ctx.tree):
        name = qualified_name(call.func, ctx.aliases)
        if name in _RPL005_BANNED:
            findings.append(
                _finding(
                    ctx,
                    call,
                    "RPL005",
                    f"{name} makes this layer impure: cache keys, replay and "
                    "worker bit-invariance require sim/mec/adversary/world "
                    "to be pure functions of their inputs (pass timestamps "
                    "and entropy in explicitly)",
                )
            )
        elif (
            name == "numpy.random.default_rng"
            and not call.args
            and not call.keywords
        ):
            findings.append(
                _finding(
                    ctx,
                    call,
                    "RPL005",
                    "default_rng() with no seed draws ambient OS entropy; "
                    "derive the generator from the caller's SeedSequence "
                    "via repro.sim.seeding",
                )
            )
    return findings


# ----------------------------------------------------------------------
# RPL007 — full-plane allocations stay behind the streaming guard
# ----------------------------------------------------------------------
_RPL007_ALLOCATORS = {"numpy.empty", "numpy.zeros", "numpy.ones", "numpy.full"}
_RPL007_GUARDS = {"FULL_PLANE_LIMIT"}
_RPL007_DIRS = ("mec", "adversary", "world", "sim")


def _rpl007_shape_arg(call: ast.Call) -> ast.expr | None:
    """The shape argument of an allocator call, positional or keyword."""
    if call.args:
        return call.args[0]
    for keyword in call.keywords:
        if keyword.arg == "shape":
            return keyword.value
    return None


def _check_rpl007(ctx: FileContext) -> list[Finding]:
    findings: list[Finding] = []

    def guard_names(func: ast.AST) -> set[str]:
        return {
            sub.id
            for sub in ast.walk(func)
            if isinstance(sub, ast.Name) and sub.id in _RPL007_GUARDS
        } | {
            sub.attr
            for sub in ast.walk(func)
            if isinstance(sub, ast.Attribute) and sub.attr in _RPL007_GUARDS
        }

    def visit(node: ast.AST, guarded: bool) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            guarded = bool(guard_names(node))
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.Call) and not guarded:
                name = qualified_name(child.func, ctx.aliases)
                shape = (
                    _rpl007_shape_arg(child)
                    if name in _RPL007_ALLOCATORS
                    else None
                )
                if isinstance(shape, (ast.Tuple, ast.List)) and len(shape.elts) == 3:
                    findings.append(
                        _finding(
                            ctx,
                            child,
                            "RPL007",
                            f"{name} with a 3-axis shape allocates a full "
                            "(services, users/cells, horizon) plane; stream "
                            "the horizon in chunks, or materialise through "
                            "a FULL_PLANE_LIMIT-guarded helper "
                            "(repro.mec.materialise_full_plane)",
                        )
                    )
            visit(child, guarded)

    visit(ctx.tree, guarded=False)
    return findings


# ----------------------------------------------------------------------
# RPL008 — telemetry clocks are injected, never named, in pure layers
# ----------------------------------------------------------------------
#: Spellings under which the telemetry Recorder reaches a pure layer.  The
#: bare name covers relative imports (``from ..telemetry import Recorder``),
#: which alias resolution deliberately does not chase.
_RPL008_RECORDERS = {
    "Recorder",
    "repro.telemetry.Recorder",
    "repro.telemetry.recorder.Recorder",
}


def _check_rpl008(ctx: FileContext) -> list[Finding]:
    findings: list[Finding] = []
    call_funcs = {id(call.func) for call in _iter_calls(ctx.tree)}
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            func = node.func
            name = qualified_name(func, ctx.aliases)
            local = func.id if isinstance(func, ast.Name) else None
            if (
                name in _RPL008_RECORDERS or local in _RPL008_RECORDERS
            ) and not any(keyword.arg == "clock" for keyword in node.keywords):
                findings.append(
                    _finding(
                        ctx,
                        node,
                        "RPL008",
                        "Recorder() without an explicit clock= binds the "
                        "ambient wall clock inside a pure layer; inject the "
                        "clock from the composition root "
                        "(Recorder(clock=...))",
                    )
                )
        elif (
            isinstance(node, (ast.Attribute, ast.Name))
            and id(node) not in call_funcs
        ):
            name = qualified_name(node, ctx.aliases)
            if name in _RPL005_BANNED:
                findings.append(
                    _finding(
                        ctx,
                        node,
                        "RPL008",
                        f"referencing {name} (even uncalled) smuggles the "
                        "wall clock into a pure layer as data; accept an "
                        "injected clock parameter instead "
                        "(repro.telemetry.default_clock lives outside "
                        "these layers)",
                    )
                )
    return findings


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def _everywhere(ctx: FileContext) -> bool:
    return True


def _in_repro(ctx: FileContext) -> bool:
    return ctx.in_repro()


def _in_repro_outside_numerics(ctx: FileContext) -> bool:
    return ctx.in_repro() and ctx.repro_subpath() != ("numerics.py",)


def _in_repro_outside_mobility(ctx: FileContext) -> bool:
    return ctx.in_repro() and not ctx.in_repro_dir("mobility")


def _in_pure_layers(ctx: FileContext) -> bool:
    return ctx.in_repro_dir(*_RPL005_DIRS)


def _in_plane_layers(ctx: FileContext) -> bool:
    return ctx.in_repro_dir(*_RPL007_DIRS)


RULES: Sequence[Rule] = (
    Rule(
        "RPL001",
        "seeding must flow through repro.sim.seeding SeedSequence helpers",
        _everywhere,
        _check_rpl001,
    ),
    Rule(
        "RPL002",
        "logs of probability data must use the LOG_FLOOR-guarded helpers",
        _in_repro_outside_numerics,
        _check_rpl002,
    ),
    Rule(
        "RPL003",
        "chain access outside mobility/ must use backend-agnostic accessors",
        _in_repro_outside_mobility,
        _check_rpl003,
    ),
    Rule(
        "RPL004",
        "dense materialisation must sit behind a declared size guard",
        _in_repro,
        _check_rpl004,
    ),
    Rule(
        "RPL005",
        "sim/mec/adversary/world must stay pure (no wall clock, no ambient entropy)",
        _in_pure_layers,
        _check_rpl005,
    ),
    Rule(
        "RPL007",
        "full (M, N, T) plane allocations must sit behind FULL_PLANE_LIMIT",
        _in_plane_layers,
        _check_rpl007,
    ),
    Rule(
        "RPL008",
        "telemetry clocks are injected in pure layers (no ambient clock refs)",
        _in_pure_layers,
        _check_rpl008,
    ),
)


def rule_codes() -> list[str]:
    """All AST rule codes, plus the registry contract check RPL006."""
    return [rule.code for rule in RULES] + ["RPL006"]
