"""Finding records and the ``# repro-lint: disable=`` escape hatch."""

from __future__ import annotations

import re
from dataclasses import dataclass, field

__all__ = ["Finding", "DisableDirectives"]

#: ``# repro-lint: disable=RPL001,RPL003`` (or ``disable=all``) on the line of
#: the finding suppresses it; ``disable-file=...`` anywhere suppresses the
#: whole file.  Rule codes are comma-separated, case-insensitive.
_DIRECTIVE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable(?:-file)?)\s*=\s*"
    r"(?P<codes>[A-Za-z0-9_,\s]+?)\s*(?:#|$)"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


@dataclass
class DisableDirectives:
    """Parsed suppression directives for one file."""

    #: line number -> set of codes (or {"all"}) disabled on that line.
    by_line: dict[int, set[str]] = field(default_factory=dict)
    #: codes (or {"all"}) disabled for the entire file.
    file_wide: set[str] = field(default_factory=set)

    @classmethod
    def parse(cls, source: str) -> "DisableDirectives":
        directives = cls()
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _DIRECTIVE.search(text)
            if match is None:
                continue
            codes = {
                token.strip().upper() if token.strip().lower() != "all" else "all"
                for token in match.group("codes").split(",")
                if token.strip()
            }
            if match.group("kind") == "disable-file":
                directives.file_wide |= codes
            else:
                directives.by_line.setdefault(lineno, set()).update(codes)
        return directives

    def suppresses(self, finding: Finding) -> bool:
        for scope in (self.file_wide, self.by_line.get(finding.line, set())):
            if "all" in scope or finding.code.upper() in scope:
                return True
        return False
