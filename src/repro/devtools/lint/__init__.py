"""Determinism-contract linter (``repro-lint``).

Six PRs of bit-identity contracts — batch == loop, serial == workers,
dense == sparse, empty-timeline == static — rest on conventions that this
package enforces mechanically: SeedSequence-only seeding, floor-guarded
log-domain numerics, backend-agnostic chain access, guarded dense
materialisation, pure simulation layers, and cache-key-stable experiment
configs.  See :mod:`repro.devtools.lint.rules` for the rule catalogue and
the README's "Determinism contracts" section for the invariant each rule
guards.
"""

from .contract import check_config_contracts
from .engine import iter_python_files, lint_paths, lint_source
from .findings import DisableDirectives, Finding
from .rules import RULES, rule_codes

__all__ = [
    "Finding",
    "DisableDirectives",
    "RULES",
    "rule_codes",
    "lint_source",
    "lint_paths",
    "iter_python_files",
    "check_config_contracts",
]
