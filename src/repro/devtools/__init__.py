"""Developer tooling that ships with the package but never runs in the hot path.

Currently one subpackage: :mod:`repro.devtools.lint`, the determinism-contract
linter (``repro-lint``).
"""
