"""repro — reproduction of "Location Privacy in Mobile Edge Clouds" (ICDCS'17).

The package implements the paper's chaff-based defence of user location
privacy in mobile edge clouds, together with every substrate it depends
on: Markov mobility models, a MEC service-migration simulator, a synthetic
taxi-trace pipeline, the eavesdropper detectors, the analytical bounds of
Section V and the experiment harness that regenerates every figure.

Quickstart
----------
>>> import numpy as np
>>> from repro import (
...     paper_synthetic_models, get_strategy, MaximumLikelihoodDetector,
...     PrivacyGame,
... )
>>> chain = paper_synthetic_models(10)["non-skewed"]
>>> game = PrivacyGame(chain, get_strategy("OO"), MaximumLikelihoodDetector())
>>> episode = game.run_episode(np.random.default_rng(0), horizon=50)
>>> 0.0 <= episode.tracking_accuracy <= 1.0
True
"""

from .core import (
    BatchEpisodeResult,
    ChaffStrategy,
    EpisodeResult,
    MaximumLikelihoodDetector,
    PrivacyGame,
    RandomGuessDetector,
    StrategyAwareDetector,
    available_strategies,
    get_strategy,
)
from .mobility import MarkovChain, paper_synthetic_models
from .sim import (
    ExperimentResult,
    MonteCarloRunner,
    SeriesResult,
    SyntheticExperimentConfig,
    TraceExperimentConfig,
)
from .experiments import available_experiments, run_experiment

__version__ = "1.0.0"

__all__ = [
    "BatchEpisodeResult",
    "ChaffStrategy",
    "EpisodeResult",
    "MaximumLikelihoodDetector",
    "PrivacyGame",
    "RandomGuessDetector",
    "StrategyAwareDetector",
    "available_strategies",
    "get_strategy",
    "MarkovChain",
    "paper_synthetic_models",
    "ExperimentResult",
    "MonteCarloRunner",
    "SeriesResult",
    "SyntheticExperimentConfig",
    "TraceExperimentConfig",
    "available_experiments",
    "run_experiment",
    "__version__",
]
