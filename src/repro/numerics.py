"""Shared numerical constants and helpers.

Every module that takes logarithms of probabilities (the mobility chain,
the trellis solvers, the detector scores, the analysis estimators) needs
the same convention for ``log(0)``.  Historically each module carried its
own epsilon; they are unified here so a single constant governs all
log-domain computations.
"""

from __future__ import annotations

from typing import Final

import numpy as np
import numpy.typing as npt

__all__ = ["LOG_FLOOR", "safe_log"]

#: Probabilities below this are treated as structurally zero when taking
#: logs.  ``log(LOG_FLOOR)`` is about -690.8, large enough to dominate any
#: feasible path cost while keeping every reduction finite.
LOG_FLOOR: Final[float] = 1e-300


def safe_log(values: npt.ArrayLike) -> npt.NDArray[np.float64]:
    """Elementwise natural log treating values below ``LOG_FLOOR`` as it."""
    return np.log(np.maximum(np.asarray(values, dtype=np.float64), LOG_FLOOR))
